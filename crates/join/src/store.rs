//! The per-shard index/window store of the parallel engine.
//!
//! PR 3 sharded the engine's *coordination* state (the task ring), but every
//! probe and insert still walked one shared index per side — on a real
//! multi-socket host exactly the cross-socket memory traffic the paper's NUMA
//! discussion (§7) says a partitioned index removes. [`ShardStore`] finishes
//! that design: behind one facade it owns either
//!
//! * the **shared store** — one [`SlidingWindow`] plus one index per side,
//!   the engine's original layout, taken verbatim whenever the partitioned
//!   store is off or only one shard is configured — or
//! * the **partitioned store** — per shard, one index *and* one
//!   [`ShardWindow`] slice per side, each holding only the tuples whose keys
//!   fall into the shard's range under a [`RangePartitioner`].
//!
//! Under the partitioned store:
//!
//! * **Inserts route to the owning shard.** An insert touches exactly one
//!   shard's index and window; inserts from a worker homed on another shard
//!   are charged as remote accesses to the store's simulated
//!   [`TrafficAccount`].
//! * **Probes fan out across overlapping shards only.** A band-join probe
//!   range `[k − w, k + w]` is routed through
//!   [`RangePartitioner::covering_shards`]; only the shards whose key ranges
//!   overlap it are visited (most narrow-band probes visit exactly one), and
//!   each visit is charged local/remote like an insert. Per visited shard the
//!   probe splits at *that shard's* edge tuple: index lookups below it, a
//!   linear scan of the shard's window suffix above it. The per-shard results
//!   merge by concatenation — shards own disjoint key ranges, so no
//!   deduplication is ever needed.
//! * **Expiry stays globally correct.** A tuple expires when `w` newer
//!   tuples of its *side* arrived, regardless of shard; every liveness
//!   decision (probe filtering, merge horizons, eager Bw-Tree deletion) is
//!   made against the side's global head, which the store maintains at
//!   ingestion. Eager-deletion backends retire each shard's slice through the
//!   shard window's expiry cursor, so a tuple is never deleted from (or left
//!   behind in) another shard's index.
//!
//! The engine's correctness argument is untouched: per (tuple, shard) the
//! edge split covers `[earliest, latest)` exactly once, a stale shard edge
//! only lengthens that shard's scan, and merge horizons are global sequence
//! numbers, so a per-shard PIM-Tree merge never drops an entry an in-flight
//! task may still probe.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::utils::CachePadded;
use pimtree_btree::Entry;
use pimtree_bwtree::BwTreeIndex;
use pimtree_common::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use pimtree_common::sync::RwLock;
use pimtree_common::{Key, KeyRange, PimConfig, ProbeConfig, Result, Seq, Step};
use pimtree_core::PimTree;
use pimtree_numa::{NumaTopology, RangePartitioner, TrafficAccount};
use pimtree_window::{ShardWindow, SlidingWindow, WindowBounds};

use crate::parallel::SharedIndexKind;
use crate::stats::JoinRunStats;

/// One index instance of the store: the PIM-Tree with its merge machinery or
/// the Bw-Tree-style eager-deletion index.
#[allow(clippy::large_enum_variant)] // a handful of instances per run; size is irrelevant
pub(crate) enum StoreIndex {
    /// The PIM-Tree with the configured merge policy. Behind an `Arc` so the
    /// merge coordinator can hold a handle across a (long) merge without
    /// pinning the store's shard table read-locked; the migration epoch
    /// protocol guarantees the tree is never swapped out from under a merge
    /// (both paths serialize on the engine's maintenance claim).
    Pim(Arc<PimTree>),
    /// The Bw-Tree-style index (no merges; eager expiry deletion).
    Bw(BwTreeIndex),
}

impl StoreIndex {
    fn new(kind: SharedIndexKind, pim: PimConfig) -> Self {
        match kind {
            SharedIndexKind::PimTree => StoreIndex::Pim(Arc::new(PimTree::new(pim))),
            SharedIndexKind::BwTree => StoreIndex::Bw(BwTreeIndex::new()),
        }
    }

    fn insert_batch(&self, entries: &[(Key, Seq)]) {
        match self {
            StoreIndex::Pim(t) => t.insert_batch(entries),
            StoreIndex::Bw(t) => {
                for &(key, seq) in entries {
                    t.insert(key, seq);
                }
            }
        }
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        match self {
            StoreIndex::Pim(t) => t.range_for_each(range, f),
            StoreIndex::Bw(t) => t.range_for_each(range, f),
        }
    }

    /// Batched range probe: `f(i, entry)` for entries in `ranges[i]`. The
    /// PIM-Tree answers the whole batch with one sorted/deduplicated,
    /// prefetched CSS-Tree group descent; the Bw-Tree has no batched path
    /// and falls back to per-range scalar probes (counted as such).
    fn probe_batch(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut pimtree_common::ProbeCounters,
        f: &mut dyn FnMut(usize, Entry),
    ) {
        match self {
            StoreIndex::Pim(t) => t.probe_batch(ranges, probe, counters, &mut *f),
            StoreIndex::Bw(t) => {
                for (i, &range) in ranges.iter().enumerate() {
                    counters.scalar_probes += 1;
                    t.range_for_each(range, &mut |e| f(i, e));
                }
            }
        }
    }

    /// Scalar batch probe: one scalar descent per range, with the PIM-Tree's
    /// mutable-side partition routing batched (one partition lock per unique
    /// partition per call).
    fn probe_ranges_scalar(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut pimtree_common::ProbeCounters,
        f: &mut dyn FnMut(usize, Entry),
    ) {
        match self {
            StoreIndex::Pim(t) => t.probe_ranges_scalar(ranges, probe, counters, &mut *f),
            StoreIndex::Bw(t) => {
                for (i, &range) in ranges.iter().enumerate() {
                    t.range_for_each(range, &mut |e| f(i, e));
                }
            }
        }
    }

    fn needs_merge(&self) -> bool {
        match self {
            StoreIndex::Pim(t) => t.needs_merge(),
            StoreIndex::Bw(_) => false,
        }
    }
}

/// Construction parameters shared by both store layouts.
pub(crate) struct StoreParams {
    /// Which index backend each window gets.
    pub kind: SharedIndexKind,
    /// PIM-Tree tuning (window size already resolved to the larger window).
    pub pim: PimConfig,
    /// Live window size per side (side 1 is 1 for self-joins).
    pub window_sizes: [usize; 2],
    /// Extra window slots retained past expiry for in-flight readers.
    pub slack: usize,
    /// Eager-deletion lag of the Bw-Tree backend (sequence numbers a
    /// deletion trails the expiry horizon by, so no in-flight task can still
    /// need the deleted entry).
    pub deletion_lag: u64,
}

/// The engine's original layout: one shared window and index per side.
struct SharedState {
    windows: [SlidingWindow; 2],
    indexes: [StoreIndex; 2],
}

/// One shard of the partitioned store: per side, the index and window slice
/// covering only the shard's key range.
struct StoreShard {
    windows: [ShardWindow; 2],
    indexes: [StoreIndex; 2],
    /// Key intervals whose state an incremental handoff moved *out* of this
    /// shard while their index entries stayed behind (neither tree backend
    /// supports cheap range deletion). The entries are unreachable — every
    /// probe of a moved interval is routed to its new owner — so they only
    /// matter when a later handoff moves an overlapping interval back *in*:
    /// [`ShardStore::begin_handoff_step`] then rebuilds this shard's indexes
    /// from its windows before the stale entries could shadow live ones.
    /// Sorted and pairwise disjoint.
    stale: Vec<(Key, Key)>,
}

impl StoreShard {
    fn new(window_sizes: [usize; 2], slack: usize, kind: SharedIndexKind, pim: PimConfig) -> Self {
        StoreShard {
            windows: [
                ShardWindow::new(window_sizes[0], slack),
                ShardWindow::new(window_sizes[1], slack),
            ],
            indexes: [StoreIndex::new(kind, pim), StoreIndex::new(kind, pim)],
            stale: Vec::new(),
        }
    }

    /// Whether `key` lies in one of the shard's stale (moved-out) intervals.
    fn is_stale(&self, key: Key) -> bool {
        let pos = self.stale.partition_point(|&(_, hi)| hi < key);
        matches!(self.stale.get(pos), Some(&(lo, _)) if lo <= key)
    }

    /// Records `[lo, hi]` as moved out, coalescing with an adjacent interval.
    fn push_stale(&mut self, lo: Key, hi: Key) {
        let pos = self.stale.partition_point(|&(_, shi)| shi < lo);
        if pos > 0 {
            let (_, prev_hi) = self.stale[pos - 1];
            if prev_hi.checked_add(1) == Some(lo) {
                self.stale[pos - 1].1 = hi;
                return;
            }
        }
        if let Some(&(nlo, _)) = self.stale.get(pos) {
            if hi.checked_add(1) == Some(nlo) {
                self.stale[pos].0 = lo;
                return;
            }
            debug_assert!(hi < nlo, "stale intervals must stay disjoint");
        }
        self.stale.insert(pos, (lo, hi));
    }
}

/// The in-flight remainder of an incremental handoff step: the keys of
/// `[lo, hi]` are **dual-owned** between `src` and `dst`. Entries of `side`
/// with `seq < begin_heads[side]` (appended before the step began) still
/// live at `src`; everything newer was routed to `dst`. The split is by
/// sequence number, so probing both homes and concatenating reports every
/// match exactly once.
#[derive(Debug, Clone, Copy)]
struct DualRange {
    lo: Key,
    hi: Key,
    src: usize,
    dst: usize,
    /// Per-side global head captured when the step began.
    begin_heads: [Seq; 2],
}

/// The incremental handoff's view of ownership, layered over the (not yet
/// swapped) partitioner. Empty outside a handoff, so the hot paths pay one
/// emptiness check.
#[derive(Default)]
struct HandoffOverlay {
    /// Intervals whose resident state has fully moved to the new owner:
    /// completed steps plus the moved prefix of the in-flight step. Inserts
    /// route there and probes visit the new owner *instead of* the old one.
    /// Sorted and pairwise disjoint.
    rerouted: Vec<(Key, Key, usize)>,
    /// The dual-owned remainder of the in-flight step, if any. At most one
    /// sub-range is ever dual-owned — the handoff frontier invariant.
    dual: Option<DualRange>,
}

impl HandoffOverlay {
    fn is_empty(&self) -> bool {
        self.rerouted.is_empty() && self.dual.is_none()
    }

    /// The rerouted interval covering `key`, if any.
    fn rerouted_to(&self, key: Key) -> Option<usize> {
        let pos = self.rerouted.partition_point(|&(_, hi, _)| hi < key);
        match self.rerouted.get(pos) {
            Some(&(lo, _, dst)) if lo <= key => Some(dst),
            _ => None,
        }
    }

    /// Records `[lo, hi]` as fully moved to `dst`, coalescing with an
    /// adjacent interval rerouted to the same destination.
    fn push_rerouted(&mut self, lo: Key, hi: Key, dst: usize) {
        let pos = self.rerouted.partition_point(|&(_, rhi, _)| rhi < lo);
        if pos > 0 {
            let (_, prev_hi, prev_dst) = self.rerouted[pos - 1];
            if prev_dst == dst && prev_hi.checked_add(1) == Some(lo) {
                self.rerouted[pos - 1].1 = hi;
                return;
            }
        }
        debug_assert!(
            self.rerouted.get(pos).is_none_or(|&(nlo, _, _)| hi < nlo),
            "rerouted intervals must stay disjoint"
        );
        self.rerouted.insert(pos, (lo, hi, dst));
    }
}

/// The migratable core of the partitioned layout: the partitioner, the
/// shard table it routes into and the handoff overlay layered over both
/// always change together (every migration transition swaps them under one
/// quiesce), so they live behind one lock.
struct PartitionedInner {
    partitioner: RangePartitioner,
    shards: Vec<StoreShard>,
    overlay: HandoffOverlay,
}

impl PartitionedInner {
    /// The shard that owns new *window appends* of `key`: the handoff
    /// overlay first (a moving sub-range's new tuples go to its new home
    /// immediately), the partitioner otherwise.
    fn append_owner(&self, key: Key) -> usize {
        if !self.overlay.is_empty() {
            if let Some(dst) = self.overlay.rerouted_to(key) {
                return dst;
            }
            if let Some(d) = &self.overlay.dual {
                if (d.lo..=d.hi).contains(&key) {
                    return d.dst;
                }
            }
        }
        self.partitioner.node_of(key)
    }

    /// The shard that owns the *index entry* of `(key, seq)` on `side`. In
    /// the dual-owned sub-range the window entry's residency decides: tuples
    /// appended before the step began still live (and get probed) at `src`,
    /// newer ones at `dst` — the seq split that keeps dual probes disjoint.
    fn index_owner(&self, side: usize, key: Key, seq: Seq) -> usize {
        if !self.overlay.is_empty() {
            if let Some(dst) = self.overlay.rerouted_to(key) {
                return dst;
            }
            if let Some(d) = &self.overlay.dual {
                if (d.lo..=d.hi).contains(&key) {
                    return if seq >= d.begin_heads[side] {
                        d.dst
                    } else {
                        d.src
                    };
                }
            }
        }
        self.partitioner.node_of(key)
    }
}

/// The partitioned layout: one [`StoreShard`] per key range, plus the global
/// per-side heads that keep expiry count-based on the *global* stream.
///
/// The partitioner/shard table sits behind an `RwLock` so a migration epoch
/// can swap in a rebalanced partitioning mid-run: the hot paths take
/// uncontended read locks, the (rare) migration takes the write lock while
/// the engine is quiesced behind its merge gate — the lock is then free by
/// construction and only fences the idle workers' edge-advance polls.
struct PartitionedState {
    inner: RwLock<PartitionedInner>,
    /// Tuples ever appended per side == the side's next sequence number.
    heads: [CachePadded<AtomicU64>; 2],
    /// Number of adopted repartition epochs (0 before the first migration).
    epoch: AtomicU64,
    topology: NumaTopology,
    traffic: TrafficAccount,
}

#[allow(clippy::large_enum_variant)] // one instance per run; size is irrelevant
enum Layout {
    Shared(SharedState),
    Partitioned(PartitionedState),
}

/// Scratch buffers of the store's hot paths, kept per thread so the steady
/// state allocates nothing (same idiom as the PIM-Tree's probe scratch).
#[derive(Default)]
struct StoreScratch {
    /// Per-item edge snapshots (shared layout) .
    edges: Vec<Seq>,
    /// Per-item match counts for the memory-traffic accounting.
    counts: Vec<u64>,
    /// Per-item covering shard interval (partitioned layout).
    cover: Vec<(usize, usize)>,
    /// Current shard's sub-batch of probe ranges / original item indices.
    sub_ranges: Vec<KeyRange>,
    sub_idx: Vec<usize>,
    /// Current shard's sub-batch of inserts.
    sub_entries: Vec<(Key, Seq)>,
    /// Insert routing: `(shard, key, seq)` per entry, grouped shard-major.
    routed: Vec<(usize, Key, Seq)>,
    /// Probe segments `(shard, item, sub-range)` of the handoff fan-out.
    seg: Vec<(usize, usize, KeyRange)>,
}

thread_local! {
    static STORE_SCRATCH: std::cell::RefCell<StoreScratch> =
        std::cell::RefCell::new(StoreScratch::default());
}

/// Emits `[lo, hi]` minus the sorted, disjoint rerouted intervals as zero or
/// more maximal remaining pieces, in ascending key order.
fn subtract_rerouted(
    rerouted: &[(Key, Key, usize)],
    lo: Key,
    hi: Key,
    mut emit: impl FnMut(Key, Key),
) {
    let mut cur = lo;
    let start = rerouted.partition_point(|&(_, rhi, _)| rhi < lo);
    for &(rlo, rhi, _) in &rerouted[start..] {
        if rlo > hi {
            break;
        }
        if rlo > cur {
            emit(cur, rlo - 1);
        }
        match rhi.checked_add(1) {
            Some(next) if next <= hi => cur = next,
            // The interval runs to (or past) `hi`: nothing remains.
            _ => return,
        }
    }
    if cur <= hi {
        emit(cur, hi);
    }
}

/// Probes one shard's index and window over a prepared sub-batch: for
/// segment `k` (belonging to item `sub_idx[k]`), index entries below the
/// shard's edge snapshot and the window suffix above it — the §4.1 split,
/// per shard. Returns `(search_nanos, scan_nanos, examined)`.
#[allow(clippy::too_many_arguments)] // internal worker of generate_partitioned()
fn probe_shard_segments(
    shard: &StoreShard,
    side: usize,
    sub_ranges: &[KeyRange],
    sub_idx: &[usize],
    bounds: &[WindowBounds],
    probe: &ProbeConfig,
    counts: &mut [u64],
    probe_counters: &mut pimtree_common::ProbeCounters,
    f: &mut dyn FnMut(usize, Seq, Key),
) -> (u64, u64, u64) {
    let window = &shard.windows[side];
    // This shard's edge snapshot, taken before its index probe: the shard's
    // index covers all *local* entries below it, the shard's window scan
    // covers the local suffix, and every segment routed here holds keys this
    // shard currently owns, so the union over visited shards reports every
    // match exactly once.
    let edge = window.edge_seq();
    let search_start = Instant::now();
    {
        let mut cb = |k: usize, e: Entry| {
            let j = sub_idx[k];
            if e.seq >= bounds[j].earliest && e.seq < bounds[j].index_horizon(edge) {
                counts[j] += 1;
                f(j, e.seq, e.key);
            }
        };
        if probe.batch {
            shard.indexes[side].probe_batch(sub_ranges, probe, probe_counters, &mut cb);
        } else {
            shard.indexes[side].probe_ranges_scalar(sub_ranges, probe, probe_counters, &mut cb);
        }
    }
    let search_nanos = search_start.elapsed().as_nanos() as u64;
    let scan_start = Instant::now();
    let mut examined = 0u64;
    for (k, &j) in sub_idx.iter().enumerate() {
        let b = bounds[j];
        let scan_from = b.scan_start(b.index_horizon(edge));
        let mut count = counts[j];
        examined += window.scan_linear(scan_from, b.latest_exclusive, sub_ranges[k], |seq, key| {
            count += 1;
            f(j, seq, key);
        }) as u64;
        counts[j] = count;
    }
    (
        search_nanos,
        scan_start.elapsed().as_nanos() as u64,
        examined,
    )
}

/// Per-side window and index state of the parallel engine, either shared
/// (one window/index pair per side) or partitioned per shard behind a
/// key-range partitioner. See the module documentation for the protocol.
pub struct ShardStore {
    layout: Layout,
    window_sizes: [usize; 2],
    deletion_lag: u64,
    /// Extra window slots retained past expiry (the migration keep-horizon
    /// and the rebuilt shard windows are derived from it).
    slack: usize,
    /// Index backend, kept so a migration can build fresh per-shard indexes.
    kind: SharedIndexKind,
    /// Per-shard PIM-Tree tuning (window size already divided per shard).
    shard_pim: PimConfig,
    /// Per-side "some index may need merging" hint, set by the insert path
    /// whenever a just-touched index reports `needs_merge`. Keeps the
    /// workers' per-loop merge poll at one relaxed load instead of one
    /// generation read-lock per shard; every threshold crossing happens
    /// inside an insert, so the inserting call itself always raises the
    /// hint, and a scan that finds nothing lowers it again.
    merge_hint: [AtomicBool; 2],
}

/// Footprint of one store shard, per side: how many live window tuples and
/// indexed entries the shard holds and the key span they cover. Used by
/// tests and diagnostics to verify that a shard's state never leaves its key
/// range.
#[derive(Debug, Clone, Default)]
pub struct StoreSideFootprint {
    /// Live tuples currently held by the shard's window (slice).
    pub window_live: usize,
    /// Minimum and maximum key over the live window tuples.
    pub window_key_span: Option<(Key, Key)>,
    /// Entries currently held by the shard's index (live and expired).
    pub index_entries: usize,
    /// Minimum and maximum key over the indexed entries.
    pub index_key_span: Option<(Key, Key)>,
}

/// What one shard-state migration moved: entries whose key's home shard
/// changed under the adopted partitioner. Entries that stayed home are
/// rebuilt in place and never charged.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StoreMigration {
    /// Index entries re-homed to a different shard (both sides).
    pub index_entries_moved: u64,
    /// Window tuples re-homed to a different shard (both sides).
    pub window_tuples_moved: u64,
    /// Nanoseconds spent snapshotting window/index state (stall-cause
    /// attribution: the quiesce interval's window-snapshot share).
    pub snapshot_nanos: u64,
    /// Nanoseconds spent re-splitting and rebuilding shard windows/indexes.
    pub rebuild_nanos: u64,
    /// Nanoseconds spent swapping the rebuilt state in (shard table /
    /// overlay / traffic bookkeeping).
    pub swap_nanos: u64,
}

/// Report of one bounded advance of the in-flight incremental handoff step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HandoffAdvance {
    /// Entries this advance moved between the step's shard pair.
    pub migration: StoreMigration,
    /// The step prefix up to (and including) this key is now fully moved
    /// and rerouted to the destination shard.
    pub cut: Key,
    /// Whether the step's whole sub-range has been moved (nothing is
    /// dual-owned anymore).
    pub done: bool,
}

/// Footprint of one store shard (both sides).
#[derive(Debug, Clone)]
pub struct StoreShardFootprint {
    /// Shard index.
    pub shard: usize,
    /// Per-side footprints (`[R, S]`; self-joins use side 0 only).
    pub sides: [StoreSideFootprint; 2],
}

impl ShardStore {
    /// Creates the store. A partitioner with more than one node selects the
    /// partitioned layout (one index/window pair per side per shard); `None`
    /// or a single-node partitioner short-circuits to the shared layout, so
    /// the single-shard engine is untouched.
    pub(crate) fn new(params: StoreParams, partitioner: Option<RangePartitioner>) -> Self {
        // Each shard indexes only its key slice — roughly 1/N of the
        // window — so the per-shard PIM-Tree is provisioned for that
        // slice. Leaving the global window size in place would scale
        // every shard's merge threshold (`m · w`) N times too high:
        // shards would merge N times more rarely (or never), keeping
        // the search-optimised immutable component empty and
        // retaining expired entries far longer than the shared
        // engine does.
        let mut shard_pim = params.pim;
        if let Some(p) = &partitioner {
            if p.nodes() > 1 {
                shard_pim.window_size = (params.pim.window_size / p.nodes()).max(1);
            }
        }
        let layout = match partitioner {
            Some(p) if p.nodes() > 1 => {
                let nodes = p.nodes();
                let shards = (0..nodes)
                    .map(|_| {
                        StoreShard::new(params.window_sizes, params.slack, params.kind, shard_pim)
                    })
                    .collect();
                Layout::Partitioned(PartitionedState {
                    inner: RwLock::new(PartitionedInner {
                        partitioner: p,
                        shards,
                        overlay: HandoffOverlay::default(),
                    }),
                    heads: [
                        CachePadded::new(AtomicU64::new(0)),
                        CachePadded::new(AtomicU64::new(0)),
                    ],
                    epoch: AtomicU64::new(0),
                    topology: NumaTopology::new(nodes, 90, 150),
                    traffic: TrafficAccount::new(),
                })
            }
            _ => Layout::Shared(SharedState {
                windows: [
                    SlidingWindow::new(params.window_sizes[0], params.slack),
                    SlidingWindow::new(params.window_sizes[1], params.slack),
                ],
                indexes: [
                    StoreIndex::new(params.kind, params.pim),
                    StoreIndex::new(params.kind, params.pim),
                ],
            }),
        };
        ShardStore {
            layout,
            window_sizes: params.window_sizes,
            deletion_lag: params.deletion_lag,
            slack: params.slack,
            kind: params.kind,
            shard_pim,
            merge_hint: [AtomicBool::new(false), AtomicBool::new(false)],
        }
    }

    /// Whether the partitioned layout is active.
    pub fn is_partitioned(&self) -> bool {
        matches!(self.layout, Layout::Partitioned(_))
    }

    /// Number of store shards (1 under the shared layout).
    pub fn shards(&self) -> usize {
        match &self.layout {
            Layout::Shared(_) => 1,
            Layout::Partitioned(p) => p.inner.read().shards.len(),
        }
    }

    /// The key-range partitioner of the partitioned layout, as of the
    /// current epoch (cloned: the live partitioner can be swapped by a
    /// migration epoch at any quiesce point).
    pub fn partitioner(&self) -> Option<RangePartitioner> {
        match &self.layout {
            Layout::Shared(_) => None,
            Layout::Partitioned(p) => Some(p.inner.read().partitioner.clone()),
        }
    }

    /// Number of repartition epochs adopted by the partitioned layout (0
    /// before the first migration, and always 0 under the shared layout).
    pub fn epoch(&self) -> u64 {
        match &self.layout {
            Layout::Shared(_) => 0,
            Layout::Partitioned(p) => p.epoch.load(Ordering::Acquire),
        }
    }

    /// The simulated NUMA topology store accesses are charged under
    /// (partitioned layout only).
    pub fn topology(&self) -> Option<&NumaTopology> {
        match &self.layout {
            Layout::Shared(_) => None,
            Layout::Partitioned(p) => Some(&p.topology),
        }
    }

    /// The simulated local/remote access account of the store (partitioned
    /// layout only; inserts and probe shard visits).
    pub fn traffic(&self) -> Option<&TrafficAccount> {
        match &self.layout {
            Layout::Shared(_) => None,
            Layout::Partitioned(p) => Some(&p.traffic),
        }
    }

    /// Appends a tuple to `side`'s window state, returning its sequence
    /// number (the side's global arrival index). Called only under the
    /// engine's ingest token.
    pub(crate) fn append(&self, side: usize, key: Key) -> Result<Seq> {
        match &self.layout {
            Layout::Shared(s) => s.windows[side].append(key),
            Layout::Partitioned(p) => {
                let inner = p.inner.read();
                let seq = p.heads[side].load(Ordering::Relaxed);
                let shard = inner.append_owner(key);
                let earliest_live = seq.saturating_sub(self.window_sizes[side] as u64);
                inner.shards[shard].windows[side].append(seq, key, earliest_live)?;
                p.heads[side].store(seq + 1, Ordering::Release);
                Ok(seq)
            }
        }
    }

    /// Boundary snapshot of `side`'s live window (global arrival indexes).
    pub(crate) fn bounds(&self, side: usize) -> WindowBounds {
        match &self.layout {
            Layout::Shared(s) => s.windows[side].bounds(),
            Layout::Partitioned(p) => {
                let head = p.heads[side].load(Ordering::Acquire);
                WindowBounds::new(head.saturating_sub(self.window_sizes[side] as u64), head)
            }
        }
    }

    /// Sequence number of `side`'s earliest live (non-expired) tuple.
    pub(crate) fn earliest_live(&self, side: usize) -> Seq {
        self.bounds(side).earliest
    }

    /// Length of `side`'s non-indexed suffix (summed over shards), the
    /// engine's admission-control signal.
    pub(crate) fn unindexed_len(&self, side: usize) -> u64 {
        match &self.layout {
            Layout::Shared(s) => s.windows[side].unindexed_len(),
            Layout::Partitioned(p) => p
                .inner
                .read()
                .shards
                .iter()
                .map(|sh| sh.windows[side].unindexed_len())
                .sum(),
        }
    }

    /// Attempts to advance `side`'s edge tuple(s) past consecutively indexed
    /// tuples (every shard under the partitioned layout).
    pub(crate) fn try_advance_edge(&self, side: usize) {
        match &self.layout {
            Layout::Shared(s) => {
                s.windows[side].try_advance_edge();
            }
            Layout::Partitioned(p) => {
                for sh in &p.inner.read().shards {
                    sh.windows[side].try_advance_edge();
                }
            }
        }
    }

    /// Inserts a task's tuples into `side`'s index state: under the
    /// partitioned layout every entry is routed to the shard owning its key
    /// (charged local/remote against the inserting worker's `home` shard),
    /// eager-deletion backends retire newly expired entries of the touched
    /// shards, and all inserted tuples are marked indexed with the edge(s)
    /// advanced — the exact protocol of the original engine, per shard.
    pub(crate) fn insert_batch(
        &self,
        side: usize,
        entries: &[(Key, Seq)],
        home: usize,
        stats: &mut JoinRunStats,
    ) {
        if entries.is_empty() {
            return;
        }
        match &self.layout {
            Layout::Shared(s) => {
                s.indexes[side].insert_batch(entries);
                if let StoreIndex::Bw(bw) = &s.indexes[side] {
                    // Eager expiry deletion with a lag large enough that no
                    // in-flight task can still need the deleted entry.
                    let w = self.window_sizes[side] as u64;
                    for &(_, seq) in entries {
                        if seq >= w + self.deletion_lag {
                            let expired_seq = seq - w - self.deletion_lag;
                            let expired_key = s.windows[side].key_of(expired_seq);
                            bw.remove(expired_key, expired_seq);
                        }
                    }
                }
                for &(_, seq) in entries {
                    s.windows[side].mark_indexed(seq);
                }
                s.windows[side].try_advance_edge();
                if s.indexes[side].needs_merge() {
                    self.merge_hint[side].store(true, Ordering::Relaxed);
                }
            }
            Layout::Partitioned(p) => {
                let inner = p.inner.read();
                let mut scratch = STORE_SCRATCH.with(|cell| cell.take());
                // Route each entry once, then group shard-major so only the
                // shards actually touched pay any per-shard work.
                scratch.routed.clear();
                for &(key, seq) in entries {
                    scratch
                        .routed
                        .push((inner.index_owner(side, key, seq), key, seq));
                }
                // Stable sort: entries keep their task order within a shard.
                scratch.routed.sort_by_key(|&(shard, _, _)| shard);
                let mut start = 0;
                while start < scratch.routed.len() {
                    let shard_idx = scratch.routed[start].0;
                    let mut end = start;
                    while end < scratch.routed.len() && scratch.routed[end].0 == shard_idx {
                        end += 1;
                    }
                    scratch.sub_entries.clear();
                    scratch
                        .sub_entries
                        .extend(scratch.routed[start..end].iter().map(|&(_, k, s)| (k, s)));
                    start = end;
                    let n = scratch.sub_entries.len() as u64;
                    p.traffic.record(home, shard_idx, n);
                    if shard_idx == home {
                        stats.store.local_inserts += n;
                    } else {
                        stats.store.remote_inserts += n;
                    }
                    let shard = &inner.shards[shard_idx];
                    shard.indexes[side].insert_batch(&scratch.sub_entries);
                    if let StoreIndex::Bw(bw) = &shard.indexes[side] {
                        let w = self.window_sizes[side] as u64;
                        let newest = scratch
                            .sub_entries
                            .iter()
                            .map(|&(_, seq)| seq)
                            .max()
                            .unwrap_or(0);
                        let upto = (newest + 1).saturating_sub(w + self.deletion_lag);
                        shard.windows[side].expire_eager(upto, |key, seq| {
                            bw.remove(key, seq);
                        });
                    }
                    for &(_, seq) in &scratch.sub_entries {
                        let found = shard.windows[side].mark_indexed(seq);
                        debug_assert!(found, "inserted tuple {seq} missing from its shard window");
                    }
                    shard.windows[side].try_advance_edge();
                    if shard.indexes[side].needs_merge() {
                        self.merge_hint[side].store(true, Ordering::Relaxed);
                    }
                }
                STORE_SCRATCH.with(|cell| cell.replace(scratch));
            }
        }
    }

    /// The shard (if any) whose index of `side` has reached its merge
    /// threshold. The shared layout reports shard 0.
    ///
    /// Gated on the per-side merge hint so the workers' per-loop poll costs
    /// one relaxed load, not a generation read-lock per shard. The hint is
    /// cleared *before* the scan: a threshold crossing whose hint raise
    /// lands after the clear survives for the next poll, and one whose
    /// raise landed before it had already pushed its tree over the
    /// threshold before the scan started, so the scan reports it — either
    /// way a crossing is never lost. A found candidate re-raises the hint,
    /// since other shards may be over their thresholds too.
    pub(crate) fn merge_candidate(&self, side: usize) -> Option<usize> {
        if !self.merge_hint[side].load(Ordering::Relaxed) {
            return None;
        }
        self.merge_hint[side].store(false, Ordering::Relaxed);
        let candidate = match &self.layout {
            Layout::Shared(s) => s.indexes[side].needs_merge().then_some(0),
            Layout::Partitioned(p) => p
                .inner
                .read()
                .shards
                .iter()
                .position(|sh| sh.indexes[side].needs_merge()),
        };
        if candidate.is_some() {
            self.merge_hint[side].store(true, Ordering::Relaxed);
        }
        candidate
    }

    /// The PIM-Tree of `(side, shard)`, if that backend is active (the merge
    /// coordinator drives the two-phase merge on it directly). Returns an
    /// owning handle so the caller does not pin the shard table read-locked
    /// across the merge; the engine's maintenance claim guarantees no
    /// migration epoch replaces the tree while the merge runs.
    pub(crate) fn pim(&self, side: usize, shard: usize) -> Option<Arc<PimTree>> {
        let index = match &self.layout {
            Layout::Shared(s) => match &s.indexes[side] {
                StoreIndex::Pim(t) => Some(Arc::clone(t)),
                StoreIndex::Bw(_) => None,
            },
            Layout::Partitioned(p) => match &p.inner.read().shards[shard].indexes[side] {
                StoreIndex::Pim(t) => Some(Arc::clone(t)),
                StoreIndex::Bw(_) => None,
            },
        };
        index
    }

    /// Generates the matches of a task's probes against `side`'s store
    /// state: for every item `j`, each stored tuple of `side` with key in
    /// `ranges[j]` and sequence number inside `bounds[j]` is reported exactly
    /// once via `f(j, seq, key)` — through the index below the (per-shard)
    /// edge snapshot, through the linear window scan above it (§4.1).
    ///
    /// `probe.batch` selects the grouped CSS descent or the scalar per-range
    /// path. Under the partitioned layout the probe fans out across exactly
    /// the shards overlapping each range (recorded in `stats.store`, charged
    /// local/remote against `home`). Search/scan timings, probe counters and
    /// the logical bytes loaded are recorded into `stats`.
    #[allow(clippy::too_many_arguments)] // one internal call site in the engine
    pub(crate) fn generate(
        &self,
        side: usize,
        ranges: &[KeyRange],
        bounds: &[WindowBounds],
        probe: &ProbeConfig,
        home: usize,
        stats: &mut JoinRunStats,
        f: &mut dyn FnMut(usize, Seq, Key),
    ) {
        debug_assert_eq!(ranges.len(), bounds.len());
        if ranges.is_empty() {
            return;
        }
        match &self.layout {
            Layout::Shared(s) => self.generate_shared(s, side, ranges, bounds, probe, stats, f),
            Layout::Partitioned(p) => {
                self.generate_partitioned(p, side, ranges, bounds, probe, home, stats, f)
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // internal worker of generate()
    fn generate_shared(
        &self,
        state: &SharedState,
        side: usize,
        ranges: &[KeyRange],
        bounds: &[WindowBounds],
        probe: &ProbeConfig,
        stats: &mut JoinRunStats,
        f: &mut dyn FnMut(usize, Seq, Key),
    ) {
        let entry_bytes = std::mem::size_of::<Entry>() as u64;
        let n = ranges.len();
        let window = &state.windows[side];
        let mut scratch = STORE_SCRATCH.with(|cell| cell.take());
        // Per-item edge snapshot, taken before the index probe: everything
        // below it is findable through the index, everything from it to the
        // bounds snapshot comes from the linear scan. A snapshot that is a
        // little stale only lengthens the scan, never changes the result set.
        scratch.edges.clear();
        let edge = window.edge();
        scratch
            .edges
            .extend(bounds.iter().map(|b| b.index_horizon(edge)));
        scratch.counts.clear();
        scratch.counts.resize(n, 0);
        let search_start = Instant::now();
        {
            let edges = &scratch.edges;
            let counts = &mut scratch.counts;
            let mut cb = |j: usize, e: Entry| {
                if e.seq >= bounds[j].earliest && e.seq < edges[j] {
                    counts[j] += 1;
                    f(j, e.seq, e.key);
                }
            };
            if probe.batch {
                state.indexes[side].probe_batch(ranges, probe, &mut stats.probe, &mut cb);
            } else {
                state.indexes[side].probe_ranges_scalar(ranges, probe, &mut stats.probe, &mut cb);
            }
        }
        stats
            .breakdown
            .record_nanos(Step::Search, search_start.elapsed().as_nanos() as u64);
        let scan_start = Instant::now();
        for j in 0..n {
            let scan_from = bounds[j].scan_start(scratch.edges[j]);
            let mut count = scratch.counts[j];
            let examined = window.scan_linear(
                scan_from,
                bounds[j].latest_exclusive,
                ranges[j],
                |seq, key| {
                    count += 1;
                    f(j, seq, key);
                },
            );
            scratch.counts[j] = count;
            stats.bytes_loaded += (examined as u64 + count + 8) * entry_bytes;
        }
        stats
            .breakdown
            .record_nanos(Step::Scan, scan_start.elapsed().as_nanos() as u64);
        STORE_SCRATCH.with(|cell| cell.replace(scratch));
    }

    #[allow(clippy::too_many_arguments)] // internal fan-out worker of generate()
    fn generate_partitioned(
        &self,
        p: &PartitionedState,
        side: usize,
        ranges: &[KeyRange],
        bounds: &[WindowBounds],
        probe: &ProbeConfig,
        home: usize,
        stats: &mut JoinRunStats,
        f: &mut dyn FnMut(usize, Seq, Key),
    ) {
        let entry_bytes = std::mem::size_of::<Entry>() as u64;
        let n = ranges.len();
        let inner = p.inner.read();
        let mut scratch = STORE_SCRATCH.with(|cell| cell.take());
        scratch.counts.clear();
        scratch.counts.resize(n, 0);
        let mut search_nanos = 0u64;
        let mut scan_nanos = 0u64;
        let mut examined_total = 0u64;
        if inner.overlay.is_empty() {
            // Fan-out query: which shards does each band-join range overlap?
            scratch.cover.clear();
            for range in ranges {
                let covered = inner.partitioner.covering_shards(range.lo, range.hi);
                stats.store.probes += 1;
                stats.store.probe_shard_visits += covered.len() as u64;
                if covered.len() == 1 {
                    stats.store.single_shard_probes += 1;
                }
                stats.store.max_probe_fanout =
                    stats.store.max_probe_fanout.max(covered.len() as u64);
                scratch.cover.push((covered.start, covered.end));
            }
            for (shard_idx, shard) in inner.shards.iter().enumerate() {
                // The shard's own key interval, for clipping each band range
                // to the sub-range this shard can actually answer. Derived
                // with checked edge math ([`RangePartitioner::shard_interval`]):
                // at the `Key::MIN`/`Key::MAX` domain edges naive
                // `boundary ± 1` arithmetic wraps and would turn an edge
                // probe into a full-domain (or empty) sub-range. A shard
                // with an empty interval can never be covered, so skipping
                // it is exact.
                let Some((shard_lo, shard_hi)) = inner.partitioner.shard_interval(shard_idx) else {
                    continue;
                };
                scratch.sub_ranges.clear();
                scratch.sub_idx.clear();
                for (j, &(lo, hi)) in scratch.cover.iter().enumerate() {
                    if (lo..hi).contains(&shard_idx) {
                        // Clip to the shard interval; covered shards overlap
                        // the range by construction, so the clip is never
                        // empty. The shard holds only keys of its interval,
                        // so the clipped probe returns exactly the same
                        // matches with a tighter index descent.
                        let clipped = KeyRange {
                            lo: ranges[j].lo.max(shard_lo),
                            hi: ranges[j].hi.min(shard_hi),
                        };
                        debug_assert!(clipped.lo <= clipped.hi, "covered shard overlaps the range");
                        scratch.sub_ranges.push(clipped);
                        scratch.sub_idx.push(j);
                    }
                }
                if scratch.sub_ranges.is_empty() {
                    continue;
                }
                let visits = scratch.sub_ranges.len() as u64;
                p.traffic.record(home, shard_idx, visits);
                if shard_idx == home {
                    stats.store.local_probe_visits += visits;
                } else {
                    stats.store.remote_probe_visits += visits;
                }
                let (s_ns, sc_ns, examined) = probe_shard_segments(
                    shard,
                    side,
                    &scratch.sub_ranges,
                    &scratch.sub_idx,
                    bounds,
                    probe,
                    &mut scratch.counts,
                    &mut stats.probe,
                    f,
                );
                search_nanos += s_ns;
                scan_nanos += sc_ns;
                examined_total += examined;
            }
        } else {
            // Handoff fan-out: per item, the base covering segments *minus*
            // the fully-moved (rerouted) intervals — their old owner holds
            // only stale index entries for those keys — plus one segment per
            // overlapping rerouted interval at its new home, plus one for
            // the dual-owned remainder at its new home. The dual interval is
            // deliberately *not* subtracted from the old owner: its
            // pre-handoff residents still live there, its newer tuples at
            // the destination, split by sequence number — the two visits are
            // disjoint, so concatenation still reports every match once.
            scratch.seg.clear();
            for (j, range) in ranges.iter().enumerate() {
                let seg_start = scratch.seg.len();
                let covered = inner.partitioner.covering_shards(range.lo, range.hi);
                for shard_idx in covered {
                    let Some((shard_lo, shard_hi)) = inner.partitioner.shard_interval(shard_idx)
                    else {
                        continue;
                    };
                    let (lo, hi) = (range.lo.max(shard_lo), range.hi.min(shard_hi));
                    subtract_rerouted(&inner.overlay.rerouted, lo, hi, |plo, phi| {
                        scratch
                            .seg
                            .push((shard_idx, j, KeyRange { lo: plo, hi: phi }));
                    });
                }
                let start = inner
                    .overlay
                    .rerouted
                    .partition_point(|&(_, rhi, _)| rhi < range.lo);
                for &(rlo, rhi, dst) in &inner.overlay.rerouted[start..] {
                    if rlo > range.hi {
                        break;
                    }
                    let clipped = KeyRange {
                        lo: range.lo.max(rlo),
                        hi: range.hi.min(rhi),
                    };
                    scratch.seg.push((dst, j, clipped));
                }
                if let Some(d) = &inner.overlay.dual {
                    if d.lo <= range.hi && range.lo <= d.hi {
                        let clipped = KeyRange {
                            lo: range.lo.max(d.lo),
                            hi: range.hi.min(d.hi),
                        };
                        scratch.seg.push((d.dst, j, clipped));
                    }
                }
                // Distinct shards this item visits (segments per shard vary).
                let item_segs = &scratch.seg[seg_start..];
                let mut visited = 0u64;
                for (i, &(s, _, _)) in item_segs.iter().enumerate() {
                    if !item_segs[..i].iter().any(|&(prev, _, _)| prev == s) {
                        visited += 1;
                    }
                }
                stats.store.probes += 1;
                stats.store.probe_shard_visits += visited;
                if visited == 1 {
                    stats.store.single_shard_probes += 1;
                }
                stats.store.max_probe_fanout = stats.store.max_probe_fanout.max(visited);
            }
            // Shard-major over the segments, item order preserved per shard.
            scratch
                .seg
                .sort_unstable_by_key(|&(shard, j, _)| (shard, j));
            let mut start = 0;
            while start < scratch.seg.len() {
                let shard_idx = scratch.seg[start].0;
                let mut end = start;
                while end < scratch.seg.len() && scratch.seg[end].0 == shard_idx {
                    end += 1;
                }
                scratch.sub_ranges.clear();
                scratch.sub_idx.clear();
                for &(_, j, sub) in &scratch.seg[start..end] {
                    scratch.sub_ranges.push(sub);
                    scratch.sub_idx.push(j);
                }
                start = end;
                let visits = scratch.sub_ranges.len() as u64;
                p.traffic.record(home, shard_idx, visits);
                if shard_idx == home {
                    stats.store.local_probe_visits += visits;
                } else {
                    stats.store.remote_probe_visits += visits;
                }
                let (s_ns, sc_ns, examined) = probe_shard_segments(
                    &inner.shards[shard_idx],
                    side,
                    &scratch.sub_ranges,
                    &scratch.sub_idx,
                    bounds,
                    probe,
                    &mut scratch.counts,
                    &mut stats.probe,
                    f,
                );
                search_nanos += s_ns;
                scan_nanos += sc_ns;
                examined_total += examined;
            }
        }
        let matches: u64 = scratch.counts.iter().sum();
        stats.bytes_loaded += (examined_total + matches + 8 * n as u64) * entry_bytes;
        stats.breakdown.record_nanos(Step::Search, search_nanos);
        stats.breakdown.record_nanos(Step::Scan, scan_nanos);
        STORE_SCRATCH.with(|cell| cell.replace(scratch));
    }

    /// Adopts a rebalanced partitioner mid-run: the shard-state migration of
    /// a repartition epoch. Returns `None` under the shared layout (nothing
    /// is placed by key range, so only the ring's router matters there).
    ///
    /// **The caller must hold the engine quiescent** — merge gate closed, no
    /// task in flight, no ingestion — exactly like a blocking merge. Under
    /// that guarantee the write lock is free and the migration sees an exact
    /// snapshot of every shard.
    ///
    /// Per side, the migration:
    ///
    /// 1. snapshots every shard window's resident slice and keeps the
    ///    entries above the *keep horizon* (`head − window − slack`): the
    ///    set any unclaimed ring task's bounds snapshot or pending
    ///    `mark_indexed` can still reach. At most `window + slack` entries
    ///    survive per side, so even a fully skewed re-partitioning fits one
    ///    shard window's capacity;
    /// 2. enumerates every shard index's entries (live and expired-but-
    ///    unmerged alike — expiry stays a probe/merge-time decision against
    ///    the global heads, which migration never touches);
    /// 3. re-splits both sets by the new partitioner and rebuilds each
    ///    shard's windows (preserving indexed flags and re-deriving edges)
    ///    and indexes (fresh per-shard trees, entries re-inserted);
    /// 4. charges every entry whose home shard changed to the store's
    ///    simulated [`TrafficAccount`] as one `old → new` interconnect
    ///    traversal — the data-transfer cost the paper's §7 worries about.
    ///
    /// Expiry of migrated tuples stays count-based on the global per-side
    /// heads: bounds snapshots, merge horizons and the probe-time liveness
    /// filter are all in global sequence numbers, so a tuple's remaining
    /// lifetime is unaffected by where it lives. Rebuilt eager-expiry
    /// cursors restart at the oldest resident entry; re-reported
    /// already-deleted entries are no-op removals, and a migrated live entry
    /// is deleted by its *new* shard exactly once.
    pub(crate) fn adopt_partitioner(&self, new: &RangePartitioner) -> Option<StoreMigration> {
        let Layout::Partitioned(p) = &self.layout else {
            return None;
        };
        let mut inner = p.inner.write();
        assert!(
            inner.overlay.is_empty(),
            "wholesale adoption cannot run during an incremental handoff"
        );
        let nodes = inner.shards.len();
        assert_eq!(
            new.nodes(),
            nodes,
            "a repartition epoch cannot change the shard count"
        );
        // (old, new) moved-entry counts for the traffic charge.
        let mut pair_moves = vec![0u64; nodes * nodes];
        let mut report = StoreMigration::default();
        let clock = std::time::Instant::now();

        // Windows: snapshot → keep-horizon filter → re-split → rebuild.
        let mut window_entries: Vec<[Vec<(Seq, Key, bool)>; 2]> =
            (0..nodes).map(|_| [Vec::new(), Vec::new()]).collect();
        for side in [0usize, 1] {
            let head = p.heads[side].load(Ordering::Acquire);
            let keep = head.saturating_sub((self.window_sizes[side] + self.slack) as u64);
            let mut collected: Vec<(usize, Seq, Key, bool)> = Vec::new();
            for (old_shard, shard) in inner.shards.iter().enumerate() {
                for (seq, key, indexed) in shard.windows[side].snapshot() {
                    if seq >= keep {
                        collected.push((old_shard, seq, key, indexed));
                    }
                }
            }
            // Global seq order: each rebuilt slice receives its subsequence
            // ascending, the ShardWindow append contract.
            collected.sort_unstable_by_key(|&(_, seq, _, _)| seq);
            for (old_shard, seq, key, indexed) in collected {
                let dest = new.node_of(key);
                if dest != old_shard {
                    report.window_tuples_moved += 1;
                    pair_moves[old_shard * nodes + dest] += 1;
                }
                window_entries[dest][side].push((seq, key, indexed));
            }
        }

        // Indexes: enumerate → re-split → rebuild. Entry order within a
        // shard is irrelevant to index correctness; seq order keeps the
        // rebuild deterministic.
        let full = KeyRange::new(Key::MIN, Key::MAX);
        let mut index_entries: Vec<[Vec<(Key, Seq)>; 2]> =
            (0..nodes).map(|_| [Vec::new(), Vec::new()]).collect();
        for side in [0usize, 1] {
            let mut collected: Vec<(usize, Key, Seq)> = Vec::new();
            for (old_shard, shard) in inner.shards.iter().enumerate() {
                shard.indexes[side].probe(full, &mut |e| {
                    // Entries a past handoff moved out are stale leftovers
                    // (their window copies live elsewhere): dropping them
                    // here would otherwise duplicate the real entries.
                    if !shard.is_stale(e.key) {
                        collected.push((old_shard, e.key, e.seq));
                    }
                });
            }
            collected.sort_unstable_by_key(|&(_, _, seq)| seq);
            for (old_shard, key, seq) in collected {
                let dest = new.node_of(key);
                if dest != old_shard {
                    report.index_entries_moved += 1;
                    pair_moves[old_shard * nodes + dest] += 1;
                }
                index_entries[dest][side].push((key, seq));
            }
        }

        report.snapshot_nanos = clock.elapsed().as_nanos() as u64;

        // Rebuild the shard table against the new partitioner.
        let new_shards: Vec<StoreShard> = window_entries
            .into_iter()
            .zip(index_entries)
            .map(|(wins, idxs)| {
                let [win0, win1] = wins;
                let build_index = |entries: &[(Key, Seq)]| {
                    let index = StoreIndex::new(self.kind, self.shard_pim);
                    if !entries.is_empty() {
                        index.insert_batch(entries);
                    }
                    index
                };
                StoreShard {
                    windows: [
                        ShardWindow::from_entries(self.window_sizes[0], self.slack, &win0),
                        ShardWindow::from_entries(self.window_sizes[1], self.slack, &win1),
                    ],
                    indexes: [build_index(&idxs[0]), build_index(&idxs[1])],
                    // The full rebuild re-homed every entry: no stale state
                    // survives a wholesale epoch.
                    stale: Vec::new(),
                }
            })
            .collect();
        report.rebuild_nanos =
            (clock.elapsed().as_nanos() as u64).saturating_sub(report.snapshot_nanos);
        inner.shards = new_shards;
        inner.partitioner = new.clone();
        // Re-inserted entries land in the mutable components: re-raise the
        // merge hints so the normal poll notices any tree pushed over its
        // threshold by the migration.
        for side in 0..2 {
            if inner.shards.iter().any(|sh| sh.indexes[side].needs_merge()) {
                self.merge_hint[side].store(true, Ordering::Relaxed);
            }
        }
        drop(inner);
        for old in 0..nodes {
            for dest in 0..nodes {
                let moved = pair_moves[old * nodes + dest];
                if moved > 0 {
                    p.traffic.record(old, dest, moved);
                }
            }
        }
        p.epoch.fetch_add(1, Ordering::AcqRel);
        report.swap_nanos = (clock.elapsed().as_nanos() as u64)
            .saturating_sub(report.snapshot_nanos + report.rebuild_nanos);
        Some(report)
    }

    /// Opens one incremental handoff step: the sub-range `[lo, hi]` becomes
    /// dual-owned between `src` and `dst`. From this point new appends (and
    /// the index entries of post-begin tuples) of the sub-range route to
    /// `dst` while the pre-begin residents stay probed at `src` — the
    /// seq-disjoint split that keeps dual probes exact. **The caller must
    /// hold the engine quiescent** (same contract as
    /// [`ShardStore::adopt_partitioner`]); the quiesce is O(1) — no state
    /// moves here.
    ///
    /// If the destination still holds stale index entries overlapping the
    /// incoming sub-range (it migrated *out* through an earlier handoff and
    /// is now coming back), the destination's indexes are first rebuilt from
    /// its windows, dropping every stale leftover that would otherwise
    /// shadow the moved-in entries.
    pub(crate) fn begin_handoff_step(&self, lo: Key, hi: Key, src: usize, dst: usize) {
        let Layout::Partitioned(p) = &self.layout else {
            panic!("an incremental handoff requires the partitioned layout");
        };
        let mut inner = p.inner.write();
        assert!(lo <= hi, "handoff step [{lo}, {hi}] is empty");
        assert!(
            inner.overlay.dual.is_none(),
            "at most one sub-range may be in flight"
        );
        let nodes = inner.shards.len();
        assert!(
            src != dst && src < nodes && dst < nodes,
            "handoff step endpoints out of range"
        );
        let stale_overlap = {
            let d = &inner.shards[dst];
            let pos = d.stale.partition_point(|&(_, shi)| shi < lo);
            d.stale.get(pos).is_some_and(|&(slo, _)| slo <= hi)
        };
        if stale_overlap {
            for side in 0..2 {
                let entries: Vec<(Key, Seq)> = inner.shards[dst].windows[side]
                    .snapshot()
                    .into_iter()
                    .filter(|&(_, _, indexed)| indexed)
                    .map(|(seq, key, _)| (key, seq))
                    .collect();
                let index = StoreIndex::new(self.kind, self.shard_pim);
                if !entries.is_empty() {
                    index.insert_batch(&entries);
                }
                if index.needs_merge() {
                    self.merge_hint[side].store(true, Ordering::Relaxed);
                }
                inner.shards[dst].indexes[side] = index;
            }
            inner.shards[dst].stale.clear();
        }
        let begin_heads = [
            p.heads[0].load(Ordering::Acquire),
            p.heads[1].load(Ordering::Acquire),
        ];
        inner.overlay.dual = Some(DualRange {
            lo,
            hi,
            src,
            dst,
            begin_heads,
        });
    }

    /// Moves one bounded chunk of the in-flight step's sub-range from its
    /// old home to its new one: the prefix up to the `budget`-th smallest
    /// resident key (every duplicate of the cut key moves with it, and the
    /// whole remainder moves when it fits the budget). The source windows
    /// are rebuilt without the chunk, the destination windows absorb it in
    /// global seq order, and the chunk's *indexed* entries are re-inserted
    /// into the destination indexes — the source keeps its (now stale,
    /// probe-invisible) copies, recorded against the shard. The moved prefix
    /// flips from dual-owned to rerouted, shrinking the dual remainder; a
    /// step interrupted between advances resumes from exactly this frontier.
    /// **The caller must hold the engine quiescent.**
    pub(crate) fn advance_handoff_step(&self, budget: usize) -> HandoffAdvance {
        let Layout::Partitioned(p) = &self.layout else {
            panic!("an incremental handoff requires the partitioned layout");
        };
        let mut inner = p.inner.write();
        let d = inner.overlay.dual.expect("no handoff step in flight");
        let budget = budget.max(1);
        let mut report = StoreMigration::default();
        let clock = std::time::Instant::now();

        // Snapshot the source once per side, keep-horizon filtered — the
        // set any in-flight reader can still reach, as in adopt_partitioner.
        let mut snaps: [Vec<(Seq, Key, bool)>; 2] = [Vec::new(), Vec::new()];
        for (side, snap) in snaps.iter_mut().enumerate() {
            let head = p.heads[side].load(Ordering::Acquire);
            let keep = head.saturating_sub((self.window_sizes[side] + self.slack) as u64);
            *snap = inner.shards[d.src].windows[side]
                .snapshot()
                .into_iter()
                .filter(|&(seq, _, _)| seq >= keep)
                .collect();
        }

        // The cut key bounding this chunk.
        let mut cand_keys: Vec<Key> = snaps
            .iter()
            .flatten()
            .filter(|&&(_, key, _)| (d.lo..=d.hi).contains(&key))
            .map(|&(_, key, _)| key)
            .collect();
        let cut = if cand_keys.len() <= budget {
            d.hi
        } else {
            // Only the budget-th smallest key matters, not the full order.
            *cand_keys.select_nth_unstable(budget - 1).1
        };
        report.snapshot_nanos = clock.elapsed().as_nanos() as u64;

        for (side, snap) in snaps.into_iter().enumerate() {
            let head = p.heads[side].load(Ordering::Acquire);
            let keep = head.saturating_sub((self.window_sizes[side] + self.slack) as u64);
            let (moving, keeping): (Vec<_>, Vec<_>) = snap
                .into_iter()
                .partition(|&(_, key, _)| (d.lo..=cut).contains(&key));
            // In place: reallocating the slack-dominated slot arrays on
            // every budgeted step would put an O(capacity) floor under the
            // per-step stall — the very thing the handoff protocol bounds.
            inner.shards[d.src].windows[side].rebuild_in_place(&keeping);
            if moving.is_empty() {
                continue;
            }
            // Absorb the chunk in global seq order, the append contract of
            // the rebuilt destination window. Both inputs are already
            // seq-ascending (snapshots are, and `partition` keeps order), so
            // a two-pointer merge does it in one linear pass — re-sorting
            // the whole destination every step dominated the per-step stall.
            let dst_snap: Vec<(Seq, Key, bool)> = inner.shards[d.dst].windows[side]
                .snapshot()
                .into_iter()
                .filter(|&(seq, _, _)| seq >= keep)
                .collect();
            let mut merged: Vec<(Seq, Key, bool)> =
                Vec::with_capacity(dst_snap.len() + moving.len());
            let (mut a, mut b) = (0, 0);
            while a < dst_snap.len() && b < moving.len() {
                if dst_snap[a].0 < moving[b].0 {
                    merged.push(dst_snap[a]);
                    a += 1;
                } else {
                    merged.push(moving[b]);
                    b += 1;
                }
            }
            merged.extend_from_slice(&dst_snap[a..]);
            merged.extend_from_slice(&moving[b..]);
            inner.shards[d.dst].windows[side].rebuild_in_place(&merged);
            let idx_entries: Vec<(Key, Seq)> = moving
                .iter()
                .filter(|&&(_, _, indexed)| indexed)
                .map(|&(seq, key, _)| (key, seq))
                .collect();
            if !idx_entries.is_empty() {
                inner.shards[d.dst].indexes[side].insert_batch(&idx_entries);
                if inner.shards[d.dst].indexes[side].needs_merge() {
                    self.merge_hint[side].store(true, Ordering::Relaxed);
                }
            }
            report.index_entries_moved += idx_entries.len() as u64;
            report.window_tuples_moved += moving.len() as u64;
        }

        report.rebuild_nanos =
            (clock.elapsed().as_nanos() as u64).saturating_sub(report.snapshot_nanos);

        // The moved prefix leaves its index entries behind at the source.
        inner.shards[d.src].push_stale(d.lo, cut);
        inner.overlay.push_rerouted(d.lo, cut, d.dst);
        let done = cut == d.hi;
        inner.overlay.dual = (!done).then(|| DualRange { lo: cut + 1, ..d });
        drop(inner);
        let moved = report.window_tuples_moved + report.index_entries_moved;
        if moved > 0 {
            p.traffic.record(d.src, d.dst, moved);
        }
        report.swap_nanos = (clock.elapsed().as_nanos() as u64)
            .saturating_sub(report.snapshot_nanos + report.rebuild_nanos);
        HandoffAdvance {
            migration: report,
            cut,
            done,
        }
    }

    /// Completes an incremental handoff once every step's sub-range has
    /// moved: the rebalanced partitioner becomes the store's base routing,
    /// the (now redundant) overlay is dropped and the migration epoch
    /// advances. **The caller must hold the engine quiescent.**
    pub(crate) fn finish_handoff(&self, new: &RangePartitioner) {
        let Layout::Partitioned(p) = &self.layout else {
            return;
        };
        let mut inner = p.inner.write();
        assert!(
            inner.overlay.dual.is_none(),
            "cannot finish a handoff with a sub-range still in flight"
        );
        assert_eq!(
            new.nodes(),
            inner.shards.len(),
            "a handoff cannot change the shard count"
        );
        debug_assert!(
            inner
                .overlay
                .rerouted
                .iter()
                .all(|&(lo, hi, dst)| new.node_of(lo) == dst && new.node_of(hi) == dst),
            "rerouted intervals disagree with the adopted partitioner"
        );
        inner.partitioner = new.clone();
        inner.overlay.rerouted.clear();
        drop(inner);
        p.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The dual-owned sub-range of the in-flight handoff step, if any:
    /// `(lo, hi, src, dst)`. Diagnostic/test accessor.
    #[cfg(test)]
    pub(crate) fn handoff_dual(&self) -> Option<(Key, Key, usize, usize)> {
        match &self.layout {
            Layout::Shared(_) => None,
            Layout::Partitioned(p) => p
                .inner
                .read()
                .overlay
                .dual
                .map(|d| (d.lo, d.hi, d.src, d.dst)),
        }
    }

    /// Per-shard footprint of the store's windows and indexes — how many
    /// tuples/entries each shard holds and the key spans they cover. Under
    /// the partitioned layout every span must lie inside the shard's key
    /// range (the tentpole invariant tests assert it). Not a hot path.
    pub fn shard_footprints(&self) -> Vec<StoreShardFootprint> {
        let full = KeyRange::new(Key::MIN, Key::MAX);
        let span_fold = |span: &mut Option<(Key, Key)>, key: Key| match span {
            None => *span = Some((key, key)),
            Some((lo, hi)) => {
                *lo = (*lo).min(key);
                *hi = (*hi).max(key);
            }
        };
        match &self.layout {
            Layout::Shared(s) => {
                let mut sides: [StoreSideFootprint; 2] = Default::default();
                for (side, out) in sides.iter_mut().enumerate() {
                    for (_, key) in s.windows[side].live_tuples() {
                        out.window_live += 1;
                        span_fold(&mut out.window_key_span, key);
                    }
                    s.indexes[side].probe(full, &mut |e| {
                        out.index_entries += 1;
                        span_fold(&mut out.index_key_span, e.key);
                    });
                }
                vec![StoreShardFootprint { shard: 0, sides }]
            }
            Layout::Partitioned(p) => p
                .inner
                .read()
                .shards
                .iter()
                .enumerate()
                .map(|(shard_idx, shard)| {
                    let mut sides: [StoreSideFootprint; 2] = Default::default();
                    for (side, out) in sides.iter_mut().enumerate() {
                        let earliest = self.earliest_live(side);
                        for (_, key) in shard.windows[side].live_entries(earliest) {
                            out.window_live += 1;
                            span_fold(&mut out.window_key_span, key);
                        }
                        shard.indexes[side].probe(full, &mut |e| {
                            // Stale leftovers of a past handoff are logically
                            // deleted: probes never reach them.
                            if !shard.is_stale(e.key) {
                                out.index_entries += 1;
                                span_fold(&mut out.index_key_span, e.key);
                            }
                        });
                    }
                    StoreShardFootprint {
                        shard: shard_idx,
                        sides,
                    }
                })
                .collect(),
        }
    }
}
