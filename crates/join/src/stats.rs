//! Run statistics shared by all join operators.

use std::time::Duration;

use pimtree_common::{CostBreakdown, LatencyHistogram, LatencyRecorder, ProbeCounters};
use pimtree_telemetry::{StallBreakdown, StallCause, TelemetryReport};

/// Statistics of one join run over a tuple sequence.
#[derive(Debug, Clone, Default)]
pub struct JoinRunStats {
    /// Tuples processed.
    pub tuples: u64,
    /// Join result pairs produced.
    pub results: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Number of index maintenance merges performed.
    pub merges: u64,
    /// Total time spent in merges.
    pub merge_time: Duration,
    /// Per-step cost breakdown (populated when instrumentation is enabled).
    pub breakdown: CostBreakdown,
    /// Per-tuple processing latencies (populated by the parallel operator).
    pub latency: LatencyRecorder,
    /// Logical bytes loaded by index probes and window scans.
    pub bytes_loaded: u64,
    /// Logical bytes stored by window appends, index inserts and result
    /// emission.
    pub bytes_stored: u64,
    /// Per-phase engine times (parallel operator only), summed over all
    /// workers: task acquisition, result generation, index update, result
    /// propagation, and idle back-off. Together with `merge_time` these
    /// account for nearly all of the workers' wall-clock time and are the
    /// basis of the engine-profile diagnostics binary.
    pub phase: EnginePhaseTimes,
    /// Task-ring acquisition / contention counters (parallel operator only),
    /// summed over all workers.
    pub ring: RingCounters,
    /// Batched-probe counters (batch sizes, dedup hits, nodes prefetched),
    /// summed over all workers. All zero when the scalar probe path is used.
    pub probe: ProbeCounters,
    /// Sharded-ring counters (home-shard claims, cross-shard steals,
    /// simulated NUMA traffic), summed over all workers. With one shard the
    /// claim accounting is still filled (every claim is a home claim charged
    /// as a local access); only the steal and routed-shard-stall counters
    /// are necessarily zero.
    pub shard: ShardCounters,
    /// Partitioned index/window store counters (probe fan-out, routed
    /// inserts, simulated store traffic), summed over all workers. All zero
    /// when the shared store is active (`partition_index` off or one shard).
    pub store: StoreCounters,
    /// Live-repartition counters (drift observations, adopted migration
    /// epochs, moved entries, quiesce stall). All zero when `--repartition`
    /// is off and no forced adoption was requested — the pre-PR-5 behavior.
    pub migration: MigrationCounters,
    /// End-to-end arrival → propagation latency histogram of the open-loop
    /// harness: per tuple, drain time minus scheduled (virtual) arrival
    /// time, so queueing delay behind a stalled or saturated engine counts
    /// toward the tail — closed-loop task latency cannot see it
    /// (coordinated omission). `None` unless an arrival rate was armed.
    pub arrival_latency: Option<LatencyHistogram>,
    /// End-of-run telemetry report (per-worker phase totals, stall-cause
    /// breakdown and histograms, Prometheus rendering). `None` for operators
    /// without the flight recorder; filled once per run by the parallel
    /// engine, so [`JoinRunStats::absorb`] leaves it untouched.
    pub telemetry: Option<TelemetryReport>,
}

/// Counters of the drift-driven live repartitioning: how many observations
/// the drift monitor consumed, how many repartition plans were adopted
/// (migration epochs) or rejected by the cost gate, how much shard state the
/// migrations moved, and how long the engine was stalled behind the quiesce
/// gate. Filled once per run from the engine's shared migration totals (not
/// per worker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationCounters {
    /// 1 when live repartitioning (or a forced adoption) was armed for the
    /// run (`max`-merged, not summed).
    pub enabled: u64,
    /// `(key, match count)` observations fed into the drift monitor.
    pub observations: u64,
    /// Repartition plans adopted — one wholesale migration epoch each in
    /// epoch mode, one completed incremental handoff each in incremental
    /// mode.
    pub epochs: u64,
    /// Incremental handoff quiesce steps executed (0 in epoch mode). Each
    /// step moved at most the configured handoff budget of window tuples.
    pub handoff_steps: u64,
    /// Plans whose moved-weight fraction failed the cost gate (or that were
    /// no-ops against the current partitioner) and were not adopted.
    pub plans_rejected: u64,
    /// Index entries whose home shard changed and were re-inserted into the
    /// new owner, summed over epochs.
    pub index_entries_moved: u64,
    /// Window tuples whose home shard changed and were re-homed, summed over
    /// epochs.
    pub window_tuples_moved: u64,
    /// Simulated interconnect cost of the moved entries under the store's
    /// NUMA topology (remote-access cost per moved entry).
    pub simulated_move_cost: u64,
    /// Wall-clock nanoseconds the engine spent quiesced for migrations
    /// (gate close through gate reopen), summed over all epochs and handoff
    /// steps.
    pub stall_nanos: u64,
    /// Longest single quiesce in nanoseconds — the per-epoch stall in epoch
    /// mode, the per-step stall in incremental mode. This is the number SLO
    /// gates assert on: the cumulative `stall_nanos` can be identical
    /// between the modes while the worst-case pause differs by orders of
    /// magnitude (`max`-merged, not summed).
    pub max_stall_nanos: u64,
    /// Per-cause decomposition of `stall_nanos`: every quiesce interval is
    /// tiled into gate-close / in-flight-drain / snapshot / rebuild / swap
    /// segments by a lap timer, so the causes sum to the total exactly.
    pub stall_causes: StallBreakdown,
}

impl MigrationCounters {
    /// Folds another run's counters into this one.
    pub fn merge_from(&mut self, other: &MigrationCounters) {
        self.enabled = self.enabled.max(other.enabled);
        self.observations += other.observations;
        self.epochs += other.epochs;
        self.handoff_steps += other.handoff_steps;
        self.plans_rejected += other.plans_rejected;
        self.index_entries_moved += other.index_entries_moved;
        self.window_tuples_moved += other.window_tuples_moved;
        self.simulated_move_cost += other.simulated_move_cost;
        self.stall_nanos += other.stall_nanos;
        self.max_stall_nanos = self.max_stall_nanos.max(other.max_stall_nanos);
        self.stall_causes.merge_from(&other.stall_causes);
    }

    /// Total entries (index plus window) the migrations re-homed.
    pub fn tuples_moved(&self) -> u64 {
        self.index_entries_moved + self.window_tuples_moved
    }

    /// Total migration stall in microseconds.
    pub fn stall_micros(&self) -> f64 {
        self.stall_nanos as f64 / 1_000.0
    }

    /// Longest single migration quiesce in microseconds.
    pub fn max_stall_micros(&self) -> f64 {
        self.max_stall_nanos as f64 / 1_000.0
    }

    /// Records one quiesce of `nanos` nanoseconds into both the cumulative
    /// and the worst-case stall.
    pub fn record_stall(&mut self, nanos: u64) {
        self.stall_nanos += nanos;
        self.max_stall_nanos = self.max_stall_nanos.max(nanos);
    }

    /// Records one quiesce with its per-cause lap breakdown. The breakdown's
    /// segments tile the quiesce interval, so `stall_nanos` advances by
    /// exactly the breakdown total and the per-cause sum stays equal to the
    /// cumulative stall.
    pub fn record_stall_breakdown(&mut self, breakdown: &StallBreakdown) {
        self.record_stall(breakdown.total_nanos());
        self.stall_causes.merge_from(breakdown);
    }

    /// Nanoseconds of migration stall attributed to `cause`.
    pub fn stall_cause_nanos(&self, cause: StallCause) -> u64 {
        self.stall_causes.nanos(cause)
    }
}

/// Counters of the partitioned index/window store (`ShardStore`): how inserts
/// were routed to their owning shard, how far probes fanned out across the
/// shards overlapping their band-join range, and what the cross-shard
/// accesses cost under the store's simulated NUMA topology. Routing and
/// fan-out counts are per worker and summed by [`JoinRunStats::absorb`]; the
/// traffic-cost fields are filled once per run from the store's global
/// `TrafficAccount`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// 1 when the partitioned store was active, 0 under the shared store
    /// (`max`-merged, not summed).
    pub partitioned: u64,
    /// Number of store shards the engine ran with (`max`-merged, not summed).
    pub store_shards: u64,
    /// Probe ranges routed through the partitioned store's fan-out query.
    pub probes: u64,
    /// Total shards visited across all routed probes (`probes` of them
    /// visited at least one shard; a probe never visits a shard whose key
    /// range does not overlap it).
    pub probe_shard_visits: u64,
    /// Probes whose band-join range was covered by a single shard.
    pub single_shard_probes: u64,
    /// Largest fan-out of a single probe (`max`-merged, not summed).
    pub max_probe_fanout: u64,
    /// Tuples inserted into the index/window shard owned by the inserting
    /// worker's home shard.
    pub local_inserts: u64,
    /// Tuples whose owning shard differed from the inserting worker's home
    /// shard (simulated interconnect traversals).
    pub remote_inserts: u64,
    /// Probe shard visits that hit the probing worker's home shard.
    pub local_probe_visits: u64,
    /// Probe shard visits that crossed to a remote shard.
    pub remote_probe_visits: u64,
    /// Total simulated memory-access cost of the store's probe and insert
    /// traffic under its `NumaTopology` (filled once per run).
    pub simulated_store_cost: u64,
}

impl StoreCounters {
    /// Folds another worker's counters into this one.
    pub fn merge_from(&mut self, other: &StoreCounters) {
        self.partitioned = self.partitioned.max(other.partitioned);
        self.store_shards = self.store_shards.max(other.store_shards);
        self.probes += other.probes;
        self.probe_shard_visits += other.probe_shard_visits;
        self.single_shard_probes += other.single_shard_probes;
        self.max_probe_fanout = self.max_probe_fanout.max(other.max_probe_fanout);
        self.local_inserts += other.local_inserts;
        self.remote_inserts += other.remote_inserts;
        self.local_probe_visits += other.local_probe_visits;
        self.remote_probe_visits += other.remote_probe_visits;
        self.simulated_store_cost += other.simulated_store_cost;
    }

    /// Mean shards visited per routed probe (0 when nothing was routed).
    pub fn mean_probe_fanout(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.probe_shard_visits as f64 / self.probes as f64
        }
    }

    /// Fraction of store accesses (inserts plus probe visits) that crossed
    /// to a remote shard (0 when nothing was recorded).
    pub fn remote_fraction(&self) -> f64 {
        let local = self.local_inserts + self.local_probe_visits;
        let remote = self.remote_inserts + self.remote_probe_visits;
        if local + remote == 0 {
            0.0
        } else {
            remote as f64 / (local + remote) as f64
        }
    }
}

/// Counters of the sharded task-ring layer: how work was routed across the
/// per-NUMA-node ring shards, how often workers had to steal from a remote
/// shard, and what the steals cost under the simulated NUMA topology.
/// Claim/steal counts are per worker and summed by [`JoinRunStats::absorb`];
/// the traffic fields are filled once per run from the ring's global
/// `TrafficAccount`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardCounters {
    /// Number of ring shards the engine ran with (`max`-merged, not summed).
    pub shards: u64,
    /// Tasks claimed from the worker's home shard.
    pub local_tasks: u64,
    /// Tuples claimed from the worker's home shard.
    pub local_tuples: u64,
    /// Tasks claimed by stealing from a remote shard.
    pub steal_tasks: u64,
    /// Tuples acquired through steals.
    pub stolen_tuples: u64,
    /// Claim rounds in which neither the home shard nor any remote shard had
    /// work (the sharded analogue of an empty-ring miss).
    pub claim_rounds_empty: u64,
    /// Ingestion stalls because the *routed* shard was full while other
    /// shards still had room — the cost of preserving global arrival order
    /// under a skewed key distribution.
    pub shard_full_stalls: u64,
    /// Simulated node-local memory accesses charged by the ring's traffic
    /// account (claims from the home shard).
    pub local_accesses: u64,
    /// Simulated remote (interconnect) accesses charged by the ring's
    /// traffic account (steals).
    pub remote_accesses: u64,
    /// Total simulated memory-access cost under the ring's `NumaTopology`.
    pub simulated_numa_cost: u64,
}

impl ShardCounters {
    /// Folds another worker's counters into this one.
    pub fn merge_from(&mut self, other: &ShardCounters) {
        self.shards = self.shards.max(other.shards);
        self.local_tasks += other.local_tasks;
        self.local_tuples += other.local_tuples;
        self.steal_tasks += other.steal_tasks;
        self.stolen_tuples += other.stolen_tuples;
        self.claim_rounds_empty += other.claim_rounds_empty;
        self.shard_full_stalls += other.shard_full_stalls;
        self.local_accesses += other.local_accesses;
        self.remote_accesses += other.remote_accesses;
        self.simulated_numa_cost += other.simulated_numa_cost;
    }

    /// Fraction of acquired tuples that came from a remote shard (0 when
    /// nothing was acquired).
    pub fn steal_fraction(&self) -> f64 {
        let total = self.local_tuples + self.stolen_tuples;
        if total == 0 {
            0.0
        } else {
            self.stolen_tuples as f64 / total as f64
        }
    }

    /// Fraction of simulated accesses that crossed the interconnect (0 when
    /// nothing was recorded).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_accesses + self.remote_accesses;
        if total == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / total as f64
        }
    }
}

/// Counters of the parallel engine's lock-free task ring, recording how often
/// each coordination point was exercised and how often it was contended.
/// All counts are summed across workers by [`JoinRunStats::absorb`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RingCounters {
    /// Successful task acquisitions (claim batches).
    pub tasks_acquired: u64,
    /// Tuples acquired across all claim batches.
    pub tuples_acquired: u64,
    /// Failed compare-exchange attempts on the claim ticket — the direct
    /// measure of acquisition contention.
    pub claim_retries: u64,
    /// Times a worker won the ingest token and batch-filled the ring.
    pub ingest_batches: u64,
    /// Times a worker skipped ingestion because another held the token.
    pub ingest_token_contended: u64,
    /// Ingestion stalls due to the non-indexed-suffix admission bound.
    pub ingest_stalls: u64,
    /// Drains that propagated at least one completed slot.
    pub drain_batches: u64,
    /// Times propagation was skipped because another worker was draining.
    pub drain_contended: u64,
    /// Slots propagated to the sink in arrival order.
    pub slots_drained: u64,
    /// Idle rounds resolved by busy-spinning.
    pub idle_spins: u64,
    /// Idle rounds resolved by yielding the time slice.
    pub idle_yields: u64,
    /// Idle rounds resolved by parking (short sleep).
    pub idle_parks: u64,
}

impl RingCounters {
    /// Folds another worker's counters into this one.
    pub fn merge_from(&mut self, other: &RingCounters) {
        self.tasks_acquired += other.tasks_acquired;
        self.tuples_acquired += other.tuples_acquired;
        self.claim_retries += other.claim_retries;
        self.ingest_batches += other.ingest_batches;
        self.ingest_token_contended += other.ingest_token_contended;
        self.ingest_stalls += other.ingest_stalls;
        self.drain_batches += other.drain_batches;
        self.drain_contended += other.drain_contended;
        self.slots_drained += other.slots_drained;
        self.idle_spins += other.idle_spins;
        self.idle_yields += other.idle_yields;
        self.idle_parks += other.idle_parks;
    }

    /// Mean tuples per successful acquisition (the effective task size).
    pub fn mean_task_size(&self) -> f64 {
        if self.tasks_acquired == 0 {
            0.0
        } else {
            self.tuples_acquired as f64 / self.tasks_acquired as f64
        }
    }

    /// Claim-ticket retries per acquired task — 0 means uncontended.
    pub fn claim_contention(&self) -> f64 {
        if self.tasks_acquired == 0 {
            0.0
        } else {
            self.claim_retries as f64 / self.tasks_acquired as f64
        }
    }
}

/// Wall-clock time spent by the parallel engine's workers in each phase of the
/// §4.1 algorithm, summed across workers.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnginePhaseTimes {
    /// Task acquisition, including waiting on and ingesting into the shared
    /// work queue.
    pub acquire: Duration,
    /// Result generation: index probes plus the linear window-suffix scans.
    pub generate: Duration,
    /// Index update: batch inserts, indexed-flag updates and edge advancement.
    pub update: Duration,
    /// Ordered result propagation (drain of completed head-of-queue slots).
    pub propagate: Duration,
    /// Idle back-off while the queue was empty or the merge gate closed.
    pub idle: Duration,
}

impl EnginePhaseTimes {
    /// Folds another worker's phase times into this one.
    pub fn merge_from(&mut self, other: &EnginePhaseTimes) {
        self.acquire += other.acquire;
        self.generate += other.generate;
        self.update += other.update;
        self.propagate += other.propagate;
        self.idle += other.idle;
    }

    /// Total accounted time across all phases.
    pub fn total(&self) -> Duration {
        self.acquire + self.generate + self.update + self.propagate + self.idle
    }
}

impl JoinRunStats {
    /// Throughput in million tuples per second — the y-axis of most figures.
    pub fn million_tuples_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs / 1.0e6
        }
    }

    /// Average number of results per processed tuple (the observed match
    /// rate).
    pub fn observed_match_rate(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.results as f64 / self.tuples as f64
        }
    }

    /// Effective load bandwidth in GB/s over the run (Figure 11d).
    pub fn load_gbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes_loaded as f64 / 1.0e9 / secs
        }
    }

    /// Effective store bandwidth in GB/s over the run (Figure 11d).
    pub fn store_gbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes_stored as f64 / 1.0e9 / secs
        }
    }

    /// Folds another run's counters into this one (used to aggregate
    /// per-thread statistics).
    pub fn absorb(&mut self, other: &JoinRunStats) {
        self.tuples += other.tuples;
        self.results += other.results;
        self.merges += other.merges;
        self.merge_time += other.merge_time;
        self.breakdown.merge_from(&other.breakdown);
        self.latency.merge_from(&other.latency);
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.phase.merge_from(&other.phase);
        self.ring.merge_from(&other.ring);
        self.probe.merge_from(&other.probe);
        self.shard.merge_from(&other.shard);
        self.store.merge_from(&other.store);
        self.migration.merge_from(&other.migration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_match_rate() {
        let s = JoinRunStats {
            tuples: 2_000_000,
            results: 4_000_000,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert!((s.million_tuples_per_second() - 2.0).abs() < 1e-9);
        assert!((s.observed_match_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_and_zero_tuples_are_safe() {
        let s = JoinRunStats::default();
        assert_eq!(s.million_tuples_per_second(), 0.0);
        assert_eq!(s.observed_match_rate(), 0.0);
        assert_eq!(s.load_gbps(), 0.0);
        assert_eq!(s.store_gbps(), 0.0);
    }

    #[test]
    fn bandwidth_is_bytes_over_time() {
        let s = JoinRunStats {
            elapsed: Duration::from_secs(2),
            bytes_loaded: 4_000_000_000,
            bytes_stored: 1_000_000_000,
            ..Default::default()
        };
        assert!((s.load_gbps() - 2.0).abs() < 1e-9);
        assert!((s.store_gbps() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ring_counters_absorb_and_derive() {
        let mut a = JoinRunStats::default();
        a.ring.tasks_acquired = 4;
        a.ring.tuples_acquired = 16;
        a.ring.claim_retries = 2;
        let mut b = JoinRunStats::default();
        b.ring.tasks_acquired = 6;
        b.ring.tuples_acquired = 24;
        b.ring.drain_contended = 3;
        a.absorb(&b);
        assert_eq!(a.ring.tasks_acquired, 10);
        assert_eq!(a.ring.tuples_acquired, 40);
        assert_eq!(a.ring.drain_contended, 3);
        assert!((a.ring.mean_task_size() - 4.0).abs() < 1e-9);
        assert!((a.ring.claim_contention() - 0.2).abs() < 1e-9);
        assert_eq!(RingCounters::default().mean_task_size(), 0.0);
        assert_eq!(RingCounters::default().claim_contention(), 0.0);
    }

    #[test]
    fn probe_counters_absorb_and_derive() {
        let mut a = JoinRunStats::default();
        a.probe.batches = 2;
        a.probe.batched_keys = 10;
        a.probe.max_batch = 6;
        a.probe.dedup_hits = 1;
        let mut b = JoinRunStats::default();
        b.probe.batches = 3;
        b.probe.batched_keys = 10;
        b.probe.max_batch = 4;
        b.probe.nodes_prefetched = 7;
        a.absorb(&b);
        assert_eq!(a.probe.batches, 5);
        assert_eq!(a.probe.batched_keys, 20);
        assert_eq!(a.probe.max_batch, 6, "max, not sum");
        assert_eq!(a.probe.nodes_prefetched, 7);
        assert!((a.probe.mean_batch_size() - 4.0).abs() < 1e-9);
        assert!((a.probe.dedup_rate() - 0.05).abs() < 1e-9);
        assert_eq!(ProbeCounters::default().mean_batch_size(), 0.0);
        assert_eq!(ProbeCounters::default().dedup_rate(), 0.0);
    }

    #[test]
    fn per_worker_probe_counters_are_summed_not_overwritten() {
        // Several workers report distinct counters; the run total must be
        // the field-wise sum (max for `max_batch`), no matter how many
        // workers fold in or in which order — a later worker must never
        // overwrite an earlier one's contribution.
        let mut workers = Vec::new();
        for w in 1..=3u64 {
            let mut s = JoinRunStats::default();
            s.probe.batches = w;
            s.probe.batched_keys = 10 * w;
            s.probe.max_batch = 4 + w;
            s.probe.dedup_hits = w;
            s.probe.nodes_prefetched = 100 * w;
            s.probe.scalar_probes = w;
            s.probe.ti_partition_locks = 2 * w;
            s.probe.ti_range_visits = 3 * w;
            s.probe.interleaved_batches = w;
            s.probe.interleaved_descents = 5 * w;
            s.probe.interleave_steps = 20 * w;
            s.probe.record_descent_steps(4, 5 * w);
            s.probe.simd_node_searches = 15 * w;
            s.probe.scalar_node_searches = 5 * w;
            workers.push(s);
        }
        let mut total = JoinRunStats::default();
        for w in &workers {
            total.absorb(w);
        }
        assert_eq!(total.probe.batches, 6);
        assert_eq!(total.probe.batched_keys, 60);
        assert_eq!(total.probe.max_batch, 7, "max, not sum");
        assert_eq!(total.probe.dedup_hits, 6);
        assert_eq!(total.probe.nodes_prefetched, 600);
        assert_eq!(total.probe.scalar_probes, 6);
        assert_eq!(total.probe.ti_partition_locks, 12);
        assert_eq!(total.probe.ti_range_visits, 18);
        assert_eq!(total.probe.interleaved_batches, 6);
        assert_eq!(total.probe.interleaved_descents, 30);
        assert_eq!(total.probe.interleave_steps, 120);
        assert_eq!(total.probe.descent_steps[3], 30, "histogram buckets sum");
        assert_eq!(total.probe.simd_node_searches, 90);
        assert_eq!(total.probe.scalar_node_searches, 30);
        assert!((total.probe.mean_descent_steps() - 4.0).abs() < 1e-9);
        assert!((total.probe.simd_search_rate() - 0.75).abs() < 1e-9);
        assert_eq!(ProbeCounters::default().mean_descent_steps(), 0.0);
        assert_eq!(ProbeCounters::default().simd_search_rate(), 0.0);
    }

    #[test]
    fn shard_counters_absorb_and_derive() {
        let mut a = JoinRunStats::default();
        a.shard.shards = 4;
        a.shard.local_tasks = 3;
        a.shard.local_tuples = 12;
        a.shard.steal_tasks = 1;
        a.shard.stolen_tuples = 4;
        let mut b = JoinRunStats::default();
        b.shard.shards = 4;
        b.shard.local_tuples = 4;
        b.shard.claim_rounds_empty = 2;
        b.shard.local_accesses = 7;
        b.shard.remote_accesses = 1;
        a.absorb(&b);
        assert_eq!(a.shard.shards, 4, "max, not sum");
        assert_eq!(a.shard.local_tuples, 16);
        assert_eq!(a.shard.stolen_tuples, 4);
        assert_eq!(a.shard.claim_rounds_empty, 2);
        assert!((a.shard.steal_fraction() - 0.2).abs() < 1e-9);
        assert!((a.shard.remote_fraction() - 0.125).abs() < 1e-9);
        assert_eq!(ShardCounters::default().steal_fraction(), 0.0);
        assert_eq!(ShardCounters::default().remote_fraction(), 0.0);
    }

    #[test]
    fn store_counters_absorb_and_derive() {
        let mut a = JoinRunStats::default();
        a.store.partitioned = 1;
        a.store.store_shards = 4;
        a.store.probes = 10;
        a.store.probe_shard_visits = 15;
        a.store.single_shard_probes = 6;
        a.store.max_probe_fanout = 3;
        a.store.local_inserts = 8;
        a.store.local_probe_visits = 12;
        let mut b = JoinRunStats::default();
        b.store.partitioned = 1;
        b.store.store_shards = 4;
        b.store.probes = 10;
        b.store.probe_shard_visits = 25;
        b.store.max_probe_fanout = 4;
        b.store.remote_inserts = 2;
        b.store.remote_probe_visits = 3;
        a.absorb(&b);
        assert_eq!(a.store.partitioned, 1, "max, not sum");
        assert_eq!(a.store.store_shards, 4, "max, not sum");
        assert_eq!(a.store.probes, 20);
        assert_eq!(a.store.probe_shard_visits, 40);
        assert_eq!(a.store.max_probe_fanout, 4, "max, not sum");
        assert!((a.store.mean_probe_fanout() - 2.0).abs() < 1e-9);
        // 20 local (8 inserts + 12 visits) vs 5 remote (2 + 3).
        assert!((a.store.remote_fraction() - 0.2).abs() < 1e-9);
        assert_eq!(StoreCounters::default().mean_probe_fanout(), 0.0);
        assert_eq!(StoreCounters::default().remote_fraction(), 0.0);
    }

    #[test]
    fn migration_counters_absorb_and_derive() {
        let mut a = JoinRunStats::default();
        a.migration.enabled = 1;
        a.migration.observations = 100;
        a.migration.epochs = 1;
        a.migration.index_entries_moved = 30;
        a.migration.window_tuples_moved = 20;
        a.migration.record_stall(3_000);
        a.migration.record_stall(2_000);
        let mut b = JoinRunStats::default();
        b.migration.enabled = 1;
        b.migration.epochs = 2;
        b.migration.handoff_steps = 5;
        b.migration.plans_rejected = 1;
        b.migration.window_tuples_moved = 10;
        b.migration.simulated_move_cost = 1500;
        b.migration.record_stall(4_000);
        a.absorb(&b);
        assert_eq!(a.migration.enabled, 1, "max, not sum");
        assert_eq!(a.migration.epochs, 3);
        assert_eq!(a.migration.handoff_steps, 5);
        assert_eq!(a.migration.plans_rejected, 1);
        assert_eq!(a.migration.tuples_moved(), 60);
        assert!((a.migration.stall_micros() - 9.0).abs() < 1e-9);
        assert_eq!(a.migration.max_stall_nanos, 4_000, "max, not sum");
        assert!((a.migration.max_stall_micros() - 4.0).abs() < 1e-9);
        assert_eq!(MigrationCounters::default().tuples_moved(), 0);
        assert_eq!(MigrationCounters::default().stall_micros(), 0.0);
        assert_eq!(MigrationCounters::default().max_stall_micros(), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = JoinRunStats {
            tuples: 10,
            results: 20,
            bytes_loaded: 100,
            ..Default::default()
        };
        let b = JoinRunStats {
            tuples: 5,
            results: 7,
            bytes_loaded: 50,
            bytes_stored: 9,
            merges: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.tuples, 15);
        assert_eq!(a.results, 27);
        assert_eq!(a.bytes_loaded, 150);
        assert_eq!(a.bytes_stored, 9);
        assert_eq!(a.merges, 2);
    }
}
