//! Brute-force reference join used as the oracle in tests.

use pimtree_common::{BandPredicate, JoinResult, StreamSide, Tuple};

/// Computes the band-join result of a tuple sequence with exact sliding-window
/// semantics by brute force: each arriving tuple is joined against the last
/// `w` tuples of the opposite stream (or of its own stream for a self-join),
/// in arrival order. Results are emitted in arrival order of the probing
/// tuple, with matches ordered by the matched tuple's arrival.
///
/// This is `O(n · w)` and only meant for validating the real operators on
/// small inputs.
pub fn reference_join(
    tuples: &[Tuple],
    predicate: BandPredicate,
    window_r: usize,
    window_s: usize,
    self_join: bool,
) -> Vec<JoinResult> {
    let mut windows: [Vec<Tuple>; 2] = [Vec::new(), Vec::new()];
    let mut out = Vec::new();
    for &t in tuples {
        let (probe_idx, own_idx) = if self_join {
            (0, 0)
        } else {
            (t.side.opposite().index(), t.side.index())
        };
        // Probe the opposite window as it stands on arrival.
        for &cand in &windows[probe_idx] {
            if predicate.matches(t.key, cand.key) {
                out.push(JoinResult::new(t, cand));
            }
        }
        // Slide the own window.
        let own_window_size = if self_join {
            window_r
        } else {
            match t.side {
                StreamSide::R => window_r,
                StreamSide::S => window_s,
            }
        };
        let w = &mut windows[own_idx];
        w.push(t);
        if w.len() > own_window_size {
            w.remove(0);
        }
    }
    out
}

/// Canonical form of a result set for comparisons that ignore match ordering
/// within one probe tuple: sorted `(probe side, probe seq, matched side,
/// matched seq)` quadruples.
pub fn canonical(results: &[JoinResult]) -> Vec<(u8, u64, u8, u64)> {
    let mut v: Vec<(u8, u64, u8, u64)> = results
        .iter()
        .map(|r| {
            (
                r.probe.side.index() as u8,
                r.probe.seq,
                r.matched.side.index() as u8,
                r.matched.seq,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_join_small_example() {
        // R: keys 10, 20; S: keys 11, 100.
        let tuples = vec![
            Tuple::r(0, 10),
            Tuple::s(0, 11),
            Tuple::r(1, 20),
            Tuple::s(1, 100),
        ];
        let out = reference_join(&tuples, BandPredicate::new(2), 10, 10, false);
        // s(0)=11 matches the earlier r(0)=10; nothing else is within 2.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].probe.seq, 0);
        assert_eq!(out[0].probe.side, StreamSide::S);
        assert_eq!(out[0].matched.seq, 0);
        assert_eq!(out[0].matched.side, StreamSide::R);
    }

    #[test]
    fn window_limits_matches() {
        // All keys equal; window of 2 on each side.
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    Tuple::r((i / 2) as u64, 5)
                } else {
                    Tuple::s((i / 2) as u64, 5)
                }
            })
            .collect();
        let out = reference_join(&tuples, BandPredicate::new(0), 2, 2, false);
        // r0 -> 0 matches; s0 -> 1 (r0); r1 -> 1 (s0); s1 -> 2 (r0, r1);
        // r2 -> 2 (s0, s1); s2 -> 2 (r1, r2) [r0 expired from window of 2].
        let per_tuple_matches = [0, 1, 1, 2, 2, 2];
        assert_eq!(out.len(), per_tuple_matches.iter().sum::<usize>());
    }

    #[test]
    fn self_join_probes_own_window() {
        let tuples = vec![Tuple::r(0, 1), Tuple::r(1, 2), Tuple::r(2, 3)];
        let out = reference_join(&tuples, BandPredicate::new(1), 2, 2, true);
        // t1 matches t0; t2 matches t1 (t0 is |3-1|=2 > 1).
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = vec![
            JoinResult::new(Tuple::r(0, 1), Tuple::s(5, 1)),
            JoinResult::new(Tuple::r(0, 1), Tuple::s(3, 1)),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(canonical(&a), canonical(&b));
    }
}
