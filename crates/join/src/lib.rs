//! Window band-join operators.
//!
//! This crate implements every join algorithm evaluated by the paper:
//!
//! * [`nlwj`] — the single-threaded nested-loop window join baseline;
//! * [`ibwj`] — single-threaded index-based window join, generic over the
//!   window index through the [`adapter::WindowIndexAdapter`] trait
//!   (B+-Tree, chained index, IM-Tree, PIM-Tree, Bw-Tree-style index);
//! * [`handshake`] — multithreaded join based on round-robin
//!   (context-insensitive) window partitioning in the style of low-latency
//!   handshake join / SplitJoin (§2.2.3), with and without local indexes;
//! * [`parallel`] — the paper's contribution: the parallel shared-index IBWJ
//!   engine with dynamic task acquisition, edge-tuple tracking, ordered result
//!   propagation and non-blocking merges (§4), running on the lock-free
//!   MPMC task ring of [`ring`];
//! * [`ring`] — the fixed-capacity atomic-slot ring buffer distributing work
//!   between the engine's threads, plus the adaptive idle back-off;
//! * [`shard`] — the NUMA-aware sharded ring layer: per-node ring shards
//!   behind a key-range router (`pimtree-numa`'s `RangePartitioner`),
//!   home-shard claiming with bounded cross-shard work stealing charged to a
//!   simulated NUMA traffic account, and a cross-shard merge cursor that
//!   keeps result propagation in global arrival order;
//! * [`store`] — the per-shard index/window store: with `partition_index`
//!   on, each shard owns one index plus one window slice per side covering
//!   only its key range; inserts route to the owning shard and probes fan
//!   out across exactly the shards overlapping the band-join range, all
//!   charged to a simulated NUMA traffic account (one shard short-circuits
//!   to the original shared index/window pair);
//! * [`timejoin`] — a time-based (event-time) window band join over the same
//!   PIM-Tree index, substantiating the paper's claim that the approach
//!   applies to time-based windows without technical limitation (§2.1);
//! * [`reference`](mod@reference) — a brute-force oracle used by the test suite to validate
//!   every operator's output;
//! * [`stats`] — run statistics shared by all operators.
//!
//! The operators consume a pre-generated, interleaved tuple sequence (see
//! `pimtree-workload`) and produce band-join results in arrival order.
//!
//! Result generation in both engines defaults to the **batched CSS group
//! probe** (`ProbeConfig` in `pimtree-common`): a task's probe keys are
//! sorted, deduplicated and resolved by one software-prefetched level-wise
//! descent of the immutable index instead of one root-to-leaf walk per
//! tuple. `ProbeConfig::scalar()` restores the original per-tuple path.

#![warn(missing_docs)]

pub mod adapter;
pub mod gate;
pub mod handshake;
pub mod ibwj;
pub mod nlwj;
pub mod parallel;
pub mod reference;
pub mod ring;
pub mod shard;
pub mod stats;
pub mod store;
pub mod timejoin;

pub use adapter::{
    BTreeAdapter, BwTreeAdapter, ChainedAdapter, ImTreeAdapter, PimTreeAdapter, WindowIndexAdapter,
};
pub use gate::QuiesceGate;
pub use handshake::{HandshakeJoin, HandshakeMode};
pub use ibwj::{build_single_threaded, IbwjOperator, SingleThreadJoin};
pub use nlwj::NlwjOperator;
pub use parallel::{ParallelIbwj, SharedIndexKind};
pub use reference::{canonical, reference_join};
pub use ring::{Backoff, ClaimedTask, IdleKind, TaskRing};
pub use shard::{ShardClaim, ShardIngestGuard, ShardedRing};
pub use stats::{
    EnginePhaseTimes, JoinRunStats, MigrationCounters, RingCounters, ShardCounters, StoreCounters,
};
pub use store::{ShardStore, StoreShardFootprint, StoreSideFootprint};
pub use timejoin::{reference_time_join, TimeBasedIbwj, TimedStreamTuple};
