//! Sharded, NUMA-aware task-ring layer for the parallel join engine.
//!
//! PR 1's [`TaskRing`] removed the engine's queue mutex, but it is still one
//! shared structure: on a multi-socket host its claim ticket and slot cache
//! lines bounce between sockets on every acquisition. This module splits the
//! ring into an array of per-node shards — each a full [`TaskRing`] with its
//! own ingest cursor, claim ticket and drain cursor — and stitches the shards
//! back into *one* logical ring with three pieces:
//!
//! * **A key-range router.** Ingestion assigns every tuple to the shard that
//!   owns its key range, using `pimtree-numa`'s [`RangePartitioner`] (the
//!   paper's workload-aware NUMA partitioning); without a partitioner the
//!   router falls back to round-robin. On a real NUMA host each shard would
//!   be homed on one socket's memory, so a worker claiming from its home
//!   shard touches only local cache lines — and with
//!   `ShardConfig::partition_index` the engine places the *index and window
//!   state* per shard as well ([`crate::store::ShardStore`], driven by the
//!   same partitioner), so the data a home claim probes is home-shard data
//!   too.
//! * **Home-shard claiming with bounded cross-shard stealing.** Every worker
//!   is pinned to a *home* shard and claims there first. Only when the home
//!   shard runs dry does it scan the other shards: a first pass steals
//!   `steal_batch` tuples from the first shard holding at least
//!   `steal_threshold` available tuples, and a second pass ignores the
//!   threshold so below-threshold work can never be stranded (a shard may
//!   have no home worker at all when `shards > threads`). Each claim is
//!   charged to a [`TrafficAccount`] under a [`NumaTopology`] — home claims
//!   as local accesses, steals as interconnect traversals — so the simulated
//!   NUMA cost model quantifies what the stealing policy would cost in
//!   hardware.
//! * **A cross-shard merge cursor.** Results must still leave in *global*
//!   arrival order. Every slot carries the tuple's global arrival stamp
//!   (assigned by the serialised ingest), and per shard the stamps are
//!   strictly increasing — so the globally next result is always at the head
//!   of the shard whose head stamp is smallest. The elected drainer repeats:
//!   find that shard, drain exactly one slot if its head is completed, stop
//!   at the first incomplete head. Ordering stays structural, exactly as in
//!   the single ring; no buffering or sorting is ever needed.
//!
//! With `shards = 1` every operation short-circuits to the plain
//! [`TaskRing`] code path, so the sharded layer costs nothing when sharding
//! is off.
//!
//! # Invariants
//!
//! * Arrival stamps are assigned under the global ingest token and strictly
//!   increase; each shard receives a subsequence, so per-shard stamps are
//!   strictly increasing too.
//! * Among stamps below an ingest-frontier snapshot taken before a scan, the
//!   minimum over shard-head stamps is the globally smallest undrained stamp
//!   (everything below the frontier was pushed before the scan began, and
//!   only the holder of the global drain token advances heads); stamps past
//!   the frontier are deferred to the next scan.
//! * A tuple's route is a pure function of the ingest state (key under range
//!   routing, arrival counter under round-robin), so `can_push`/`push` pairs
//!   always target the same shard.

use std::sync::Arc;

use crossbeam::utils::CachePadded;
use pimtree_common::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use pimtree_common::sync::RwLock;
use pimtree_common::{JoinResult, Key, ShardConfig, Tuple};
use pimtree_numa::{NumaTopology, RangePartitioner, TrafficAccount};
use pimtree_window::WindowBounds;

use crate::ring::{ClaimedTask, TaskRing};
use crate::stats::{RingCounters, ShardCounters};

/// How the sharded ring assigns ingested tuples to shards.
enum Router {
    /// `arrival % shards`: context-insensitive spreading, the fallback when
    /// no key-range partitioner is configured.
    RoundRobin,
    /// The shard owning the tuple's key range (`pimtree-numa`'s
    /// workload-aware partitioning), plus the incremental handoff's route
    /// overrides: inclusive key intervals already (or currently being)
    /// re-homed to a new owner, checked before the partitioner so new
    /// ingests of a moving sub-range go to its new home immediately. Sorted
    /// and pairwise disjoint (they come from disjoint handoff steps), so a
    /// binary search finds the covering override.
    Range(RangePartitioner, Vec<(Key, Key, usize)>),
}

/// One successful claim from the sharded ring: which shard the tuples came
/// from (needed to complete their slots) and how many were claimed.
#[derive(Debug, Clone, Copy)]
pub struct ShardClaim {
    /// Shard index the claimed slots belong to.
    pub shard: usize,
    /// Number of tuples claimed.
    pub tuples: usize,
    /// Whether the claim was a steal from a non-home shard.
    pub stolen: bool,
}

/// An array of per-node [`TaskRing`]s behind a key-range router, claimed
/// home-first with bounded stealing and drained through a cross-shard merge
/// cursor. See the module documentation for the protocol.
pub struct ShardedRing {
    rings: Box<[TaskRing]>,
    /// The routing policy, swappable mid-run by a repartition epoch
    /// ([`set_partitioner`](Self::set_partitioner)). Ingestion snapshots the
    /// `Arc` once per ingest-token acquisition, so the per-tuple routing
    /// path costs no lock; the swap itself only happens while the engine is
    /// quiesced (no ingest guard alive), so a guard never observes a torn
    /// routing decision.
    router: RwLock<Arc<Router>>,
    steal_batch: usize,
    steal_threshold: usize,
    /// Next global arrival stamp; written only under the global ingest token.
    next_arrival: CachePadded<AtomicU64>,
    /// Running total of ingested-but-unclaimed tuples across all shards
    /// (incremented per push, decremented per claim). Kept so the engine's
    /// per-claim-round and per-ingested-tuple "is the ring running low?"
    /// checks are one relaxed load instead of an O(shards) sweep over every
    /// shard's tail/ticket cache lines — the cross-shard traffic sharding
    /// exists to avoid. Signed because a claim's decrement can land before a
    /// racing reader observed the matching increment.
    available_total: CachePadded<AtomicI64>,
    /// Serialises ingestion across all shards (routing decisions and arrival
    /// stamps must be assigned in input order).
    ingest_token: CachePadded<AtomicBool>,
    /// Serialises the cross-shard merge cursor.
    drain_token: CachePadded<AtomicBool>,
    topology: NumaTopology,
    traffic: TrafficAccount,
}

impl ShardedRing {
    /// Creates a sharded ring with `config.shards` shards of
    /// `per_shard_capacity` slots each (rounded like
    /// [`TaskRing::with_capacity`]). `task_size` resolves the automatic
    /// steal-batch size; `partitioner` enables key-range routing and must
    /// cover exactly `config.shards` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the partitioner's node count
    /// does not match the shard count.
    pub fn new(
        config: &ShardConfig,
        task_size: usize,
        per_shard_capacity: usize,
        partitioner: Option<RangePartitioner>,
    ) -> Self {
        config.validate().expect("invalid shard configuration");
        let router = match partitioner {
            Some(p) => {
                assert_eq!(
                    p.nodes(),
                    config.shards,
                    "partitioner and shard config disagree on the shard count"
                );
                Router::Range(p, Vec::new())
            }
            None => Router::RoundRobin,
        };
        let topology = if config.shards == 1 {
            NumaTopology::new(1, 90, 90)
        } else {
            NumaTopology::new(config.shards, 90, 150)
        };
        ShardedRing {
            rings: (0..config.shards)
                .map(|_| TaskRing::with_capacity(per_shard_capacity))
                .collect(),
            router: RwLock::new(Arc::new(router)),
            steal_batch: if config.steal_batch > 0 {
                config.steal_batch
            } else {
                task_size.max(1)
            },
            steal_threshold: config.steal_threshold.max(1),
            next_arrival: CachePadded::new(AtomicU64::new(0)),
            available_total: CachePadded::new(AtomicI64::new(0)),
            ingest_token: CachePadded::new(AtomicBool::new(false)),
            drain_token: CachePadded::new(AtomicBool::new(false)),
            topology,
            traffic: TrafficAccount::new(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Total slot capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.rings.iter().map(|r| r.capacity()).sum()
    }

    /// Ingested-but-unclaimed tuples across all shards. One relaxed load of
    /// a maintained counter, not a per-shard sweep — under concurrent claims
    /// the value can transiently lag by in-flight claims, which is fine for
    /// its only use as the engine's "is the ring running low?" gate.
    pub fn available(&self) -> usize {
        if self.rings.len() == 1 {
            return self.rings[0].available();
        }
        self.available_total.load(Ordering::Relaxed).max(0) as usize
    }

    /// Whether every ingested slot of every shard has been drained.
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(|r| r.is_empty())
    }

    /// Occupied slots (ingested and not yet drained) across all shards.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Ingested-but-unclaimed tuples currently available on one shard.
    pub fn shard_available(&self, shard: usize) -> usize {
        self.rings[shard].available()
    }

    /// The simulated NUMA topology claims are charged under.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// The simulated local/remote access account (home claims are local,
    /// steals are remote).
    pub fn traffic(&self) -> &TrafficAccount {
        &self.traffic
    }

    /// Tries to win the global ingest token. At most one token exists at a
    /// time; it is released when the guard drops. The per-shard rings are
    /// never token-locked individually: the global token is the only
    /// ingestion exclusion (the rings are private to this structure), so
    /// winning it costs one atomic swap and no allocation regardless of the
    /// shard count.
    pub fn try_ingest(&self) -> Option<ShardIngestGuard<'_>> {
        if self.ingest_token.swap(true, Ordering::AcqRel) {
            return None;
        }
        // Snapshot the routing policy once per token acquisition: routing
        // stays lock-free per tuple, and a repartition epoch (which only
        // swaps the router while no guard is alive) can never change a
        // guard's routing mid-batch.
        let router = Arc::clone(&self.router.read());
        Some(ShardIngestGuard { ring: self, router })
    }

    /// Swaps the routing policy to key-range routing under `partitioner` —
    /// the ring half of a repartition epoch. Must only be called while the
    /// engine is quiesced (no ingest guard alive): tuples already ingested
    /// keep the shard the old policy chose and are drained by home claims or
    /// steals, which preserves both claim coverage and (via arrival stamps)
    /// global propagation order.
    ///
    /// # Panics
    ///
    /// Panics if the partitioner's node count does not match the shard
    /// count.
    pub fn set_partitioner(&self, partitioner: RangePartitioner) {
        assert_eq!(
            partitioner.nodes(),
            self.rings.len(),
            "partitioner and shard config disagree on the shard count"
        );
        *self.router.write() = Arc::new(Router::Range(partitioner, Vec::new()));
    }

    /// Adds a route override for the *inclusive* key interval `[lo, hi]`:
    /// every ingest of a key in it routes to shard `dst`, bypassing the
    /// partitioner — the ring half of beginning an incremental handoff step
    /// (the moving sub-range's new inserts must go to the new home while the
    /// resident slice is still being migrated). Overrides accumulate across
    /// the steps of one handoff and must stay pairwise disjoint; they are
    /// cleared when [`set_partitioner`](Self::set_partitioner) installs the
    /// handoff's final partitioner. Like the swap itself, this must only be
    /// called while the engine is quiesced (no ingest guard alive).
    ///
    /// # Panics
    ///
    /// Panics when round-robin routing is active (a handoff needs a
    /// partitioner to move away from), when `dst` is out of range, when
    /// `lo > hi`, or when the interval overlaps an existing override.
    pub fn add_route_override(&self, lo: Key, hi: Key, dst: usize) {
        assert!(lo <= hi, "override interval [{lo}, {hi}] is empty");
        assert!(dst < self.rings.len(), "override shard {dst} out of range");
        let mut router = self.router.write();
        let Router::Range(partitioner, overrides) = &**router else {
            panic!("route overrides need range routing");
        };
        let mut overrides = overrides.clone();
        let pos = overrides.partition_point(|&(_, ohi, _)| ohi < lo);
        if let Some(&(olo, ohi, _)) = overrides.get(pos) {
            assert!(
                hi < olo,
                "override [{lo}, {hi}] overlaps existing [{olo}, {ohi}]"
            );
        }
        overrides.insert(pos, (lo, hi, dst));
        *router = Arc::new(Router::Range(partitioner.clone(), overrides));
    }

    /// Number of live route overrides (zero outside an incremental handoff).
    pub fn route_overrides(&self) -> usize {
        match &**self.router.read() {
            Router::RoundRobin => 0,
            Router::Range(_, overrides) => overrides.len(),
        }
    }

    /// Claims up to `max` tuples for the worker homed on `home`: from the
    /// home shard if it has work, otherwise by stealing `steal_batch` tuples
    /// from a remote shard (threshold-gated first pass, unconditional second
    /// pass). Returns `None` when no shard had claimable work.
    pub fn claim(
        &self,
        home: usize,
        max: usize,
        out: &mut Vec<ClaimedTask>,
        ring: &mut RingCounters,
        shard: &mut ShardCounters,
    ) -> Option<ShardClaim> {
        let shards = self.rings.len();
        let home = home % shards;
        let n = self.rings[home].claim(max, out, ring);
        if n > 0 {
            self.available_total.fetch_sub(n as i64, Ordering::Relaxed);
            shard.local_tasks += 1;
            shard.local_tuples += n as u64;
            self.traffic.record(home, home, n as u64);
            return Some(ShardClaim {
                shard: home,
                tuples: n,
                stolen: false,
            });
        }
        if shards == 1 {
            shard.claim_rounds_empty += 1;
            return None;
        }
        let steal = self.steal_batch.max(1);
        // First pass: only shards with a meaningful backlog, so stealing does
        // not strip a shard whose own worker is about to come back for its
        // last few tuples. Second pass: anything goes — a shard without a
        // home worker (shards > threads) must still be drained by someone.
        for pass in 0..2 {
            for offset in 1..shards {
                let victim = (home + offset) % shards;
                if pass == 0 && self.rings[victim].available() < self.steal_threshold {
                    continue;
                }
                let n = self.rings[victim].claim(steal, out, ring);
                if n > 0 {
                    self.available_total.fetch_sub(n as i64, Ordering::Relaxed);
                    shard.steal_tasks += 1;
                    shard.stolen_tuples += n as u64;
                    self.traffic.record(home, victim, n as u64);
                    return Some(ShardClaim {
                        shard: victim,
                        tuples: n,
                        stolen: true,
                    });
                }
            }
            if self.steal_threshold <= 1 {
                break; // the first pass was already unconditional
            }
        }
        shard.claim_rounds_empty += 1;
        None
    }

    /// Publishes the results of a claimed slot of `shard`, making it eligible
    /// for cross-shard in-order propagation.
    #[inline]
    pub fn complete(&self, shard: usize, gid: u64, result_count: u64, results: Vec<JoinResult>) {
        self.rings[shard].complete(gid, result_count, results);
    }

    /// Propagates the globally completed prefix in arrival order, invoking
    /// `emit(result_count, results)` per slot. Serialised by the global drain
    /// token: when another thread is draining, returns `None` immediately.
    ///
    /// With one shard this is exactly [`TaskRing::try_drain`]. With several,
    /// the merge cursor repeatedly drains the head of the shard whose head
    /// arrival stamp is smallest, stopping at the first incomplete head.
    ///
    /// Each selection round only considers stamps below the ingest
    /// *frontier* (`next_arrival`) read at the start of the round. This is
    /// what makes the non-atomic shard-by-shard peek safe against concurrent
    /// ingestion: a candidate below the frontier was pushed before the round
    /// began, so every smaller stamp was pushed even earlier (stamps are
    /// assigned in order) and is either drained or sitting at some shard's
    /// head where this round's scan will see it — the selected candidate is
    /// the true global minimum. Without the frontier guard, a pair of tuples
    /// pushed *during* the scan (the earlier one to an already-peeked shard,
    /// the later one — completed quickly — to a not-yet-peeked shard) could
    /// be drained in the wrong order. Stamps at or above the frontier are
    /// simply deferred to the next round.
    pub fn try_drain<F: FnMut(u64, Vec<JoinResult>)>(
        &self,
        collect: bool,
        mut emit: F,
    ) -> Option<u64> {
        if self.rings.len() == 1 {
            return self.rings[0].try_drain(collect, emit);
        }
        if self.drain_token.swap(true, Ordering::AcqRel) {
            return None;
        }
        let mut drained = 0u64;
        loop {
            let frontier = self.next_arrival.load(Ordering::Acquire);
            let mut best: Option<(u64, bool, usize)> = None;
            for (s, ring) in self.rings.iter().enumerate() {
                if let Some((arrival, completed)) = ring.head_arrival() {
                    if arrival < frontier && best.is_none_or(|(b, _, _)| arrival < b) {
                        best = Some((arrival, completed, s));
                    }
                }
            }
            let Some((_, completed, s)) = best else { break };
            if !completed {
                break;
            }
            let did = self.rings[s]
                .drain_one(collect, &mut emit)
                .expect("per-shard drain tokens are free under the global token");
            if !did {
                // The peek raced with a concurrent `complete`; the head state
                // can only have moved *towards* completion, so retry.
                continue;
            }
            drained += 1;
        }
        self.drain_token.store(false, Ordering::Release);
        Some(drained)
    }
}

/// Exclusive sharded-ingestion handle; released on drop. Routing (and with
/// it the arrival-stamp assignment) is only valid while the guard is held.
pub struct ShardIngestGuard<'a> {
    ring: &'a ShardedRing,
    /// Routing policy snapshot taken when the token was won (see
    /// [`ShardedRing::try_ingest`]).
    router: Arc<Router>,
}

impl ShardIngestGuard<'_> {
    /// The shard the next pushed tuple with `key` will land on. Stable
    /// between a [`can_push`](Self::can_push) check and the matching
    /// [`push`](Self::push): range routing depends only on the key, and the
    /// round-robin cursor advances only on `push`.
    pub fn route(&self, key: Key) -> usize {
        match &*self.router {
            Router::RoundRobin => {
                (self.ring.next_arrival.load(Ordering::Relaxed) % self.ring.rings.len() as u64)
                    as usize
            }
            Router::Range(p, overrides) => {
                // Overrides are sorted and disjoint: the first interval with
                // hi >= key covers key or nobody does.
                let pos = overrides.partition_point(|&(_, ohi, _)| ohi < key);
                match overrides.get(pos) {
                    Some(&(olo, _, dst)) if olo <= key => dst,
                    _ => p.node_of(key),
                }
            }
        }
    }

    /// Whether shard `shard` can accept a new tuple right now (see
    /// [`IngestGuard::can_push`](crate::ring::IngestGuard::can_push) for the
    /// contract).
    #[inline]
    pub fn can_push(&self, shard: usize) -> bool {
        self.ring.rings[shard].can_push_unguarded()
    }

    /// Ingests one tuple on its routed `shard` (the value
    /// [`route`](Self::route) returned for the tuple's key), stamping it with
    /// the next global arrival index. The caller must gate on
    /// [`can_push`](Self::can_push).
    pub fn push(&self, shard: usize, tuple: Tuple, bounds: WindowBounds) {
        debug_assert_eq!(shard, self.route(tuple.key), "push must follow route");
        let arrival = self.ring.next_arrival.load(Ordering::Relaxed);
        self.ring.rings[shard].push_unguarded(tuple, bounds, arrival);
        self.ring.available_total.fetch_add(1, Ordering::Relaxed);
        self.ring.next_arrival.store(arrival + 1, Ordering::Release);
    }
}

impl Drop for ShardIngestGuard<'_> {
    fn drop(&mut self) {
        self.ring.ingest_token.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimtree_common::StreamSide;

    fn counters() -> (RingCounters, ShardCounters) {
        (RingCounters::default(), ShardCounters::default())
    }

    fn config(shards: usize) -> ShardConfig {
        ShardConfig::default().with_shards(shards)
    }

    /// Ingests `n` tuples with keys from `key_of`, gated on capacity.
    fn ingest_keys(ring: &ShardedRing, start: u64, n: u64, key_of: impl Fn(u64) -> Key) -> u64 {
        let guard = ring.try_ingest().expect("token free");
        let mut pushed = 0;
        for i in start..start + n {
            let key = key_of(i);
            let shard = guard.route(key);
            if !guard.can_push(shard) {
                break;
            }
            guard.push(shard, Tuple::r(i, key), WindowBounds::new(i, i + 1));
            pushed += 1;
        }
        pushed
    }

    #[test]
    fn single_shard_degenerates_to_the_plain_ring() {
        let ring = ShardedRing::new(&config(1), 4, 16, None);
        assert_eq!(ring.shards(), 1);
        assert_eq!(ring.capacity(), 16);
        assert_eq!(ingest_keys(&ring, 0, 5, |i| i as Key), 5);
        let (mut rc, mut sc) = counters();
        let mut out = Vec::new();
        let claim = ring.claim(7, 3, &mut out, &mut rc, &mut sc).unwrap();
        assert_eq!((claim.shard, claim.tuples, claim.stolen), (0, 3, false));
        assert_eq!(sc.local_tuples, 3);
        assert_eq!(sc.stolen_tuples, 0);
        for t in &out {
            ring.complete(0, t.gid, 1, Vec::new());
        }
        let mut drained = 0;
        assert_eq!(ring.try_drain(false, |_, _| drained += 1), Some(3));
        assert_eq!(drained, 3);
        assert_eq!(ring.traffic().remote(), 0);
    }

    #[test]
    fn round_robin_routing_spreads_tuples_evenly() {
        let ring = ShardedRing::new(&config(4), 2, 8, None);
        assert_eq!(ingest_keys(&ring, 0, 12, |_| 42), 12);
        for s in 0..4 {
            assert_eq!(ring.shard_available(s), 3, "shard {s}");
        }
    }

    #[test]
    fn range_routing_follows_the_partitioner() {
        let keys: Vec<Key> = (0..1000).collect();
        let p = RangePartitioner::from_key_sample(4, &keys);
        let ring = ShardedRing::new(&config(4), 2, 512, Some(p.clone()));
        assert_eq!(ingest_keys(&ring, 0, 1000, |i| i as Key), 1000);
        let mut per_shard = [0usize; 4];
        for (s, count) in per_shard.iter_mut().enumerate() {
            *count = ring.shard_available(s);
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 1000);
        for (s, &count) in per_shard.iter().enumerate() {
            assert!((150..=400).contains(&count), "shard {s}: {per_shard:?}");
        }
        // Spot-check that each ingested tuple landed on its owning shard.
        let (mut rc, mut sc) = counters();
        let mut out = Vec::new();
        for home in 0..4 {
            while let Some(claim) = ring.claim(home, 64, &mut out, &mut rc, &mut sc) {
                if claim.stolen {
                    continue;
                }
                for t in &out[out.len() - claim.tuples..] {
                    assert_eq!(p.node_of(t.tuple.key), claim.shard);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the shard count")]
    fn mismatched_partitioner_rejected() {
        let p = RangePartitioner::from_key_sample(2, &[1, 2, 3]);
        let _ = ShardedRing::new(&config(4), 2, 8, Some(p));
    }

    #[test]
    #[should_panic(expected = "disagree on the shard count")]
    fn set_partitioner_rejects_mismatched_node_count() {
        let ring = ShardedRing::new(&config(4), 2, 8, None);
        ring.set_partitioner(RangePartitioner::from_key_sample(2, &[1, 2, 3]));
    }

    #[test]
    fn router_swap_reroutes_new_ingests_and_drains_old_ones_in_order() {
        // Start with a partitioner sending everything to shard 0, ingest a
        // prefix, swap to the inverse routing mid-run, ingest a suffix: old
        // tuples stay where the old policy put them (claimable by steal),
        // new tuples follow the new policy, and the merge cursor still
        // drains the union in global arrival order.
        let all_low = RangePartitioner::from_key_sample(2, &[]);
        let ring = ShardedRing::new(&config(2), 4, 64, Some(all_low));
        assert_eq!(ingest_keys(&ring, 0, 10, |i| i as Key), 10);
        assert_eq!(ring.shard_available(0), 10);
        assert_eq!(ring.shard_available(1), 0);
        // New policy: keys below 5 on shard 0, the rest on shard 1.
        ring.set_partitioner(RangePartitioner::from_key_sample(
            2,
            &(0..10).collect::<Vec<Key>>(),
        ));
        assert_eq!(ingest_keys(&ring, 10, 10, |i| i as Key), 10);
        assert!(
            ring.shard_available(1) > 0,
            "post-swap high keys route to shard 1"
        );
        let (mut rc, mut sc) = counters();
        let mut tasks = Vec::new();
        let mut claims = Vec::new();
        for home in [0usize, 1] {
            loop {
                let before = tasks.len();
                match ring.claim(home, 3, &mut tasks, &mut rc, &mut sc) {
                    Some(claim) => {
                        for t in &tasks[before..] {
                            claims.push((claim.shard, t.gid, t.tuple.seq));
                        }
                    }
                    None => break,
                }
            }
        }
        assert_eq!(claims.len(), 20, "no tuple stranded across the swap");
        for &(shard, gid, seq) in claims.iter().rev() {
            ring.complete(shard, gid, seq, Vec::new());
        }
        let mut drained = Vec::new();
        assert_eq!(ring.try_drain(false, |n, _| drained.push(n)), Some(20));
        assert_eq!(
            drained,
            (0..20).collect::<Vec<u64>>(),
            "drain follows global arrival order across the router swap"
        );
    }

    #[test]
    fn route_overrides_redirect_only_their_interval() {
        // All keys on shard 0 initially; an override re-homes [10, 19] to
        // shard 1 while the partitioner is untouched.
        let all_low = RangePartitioner::from_key_sample(2, &[]);
        let ring = ShardedRing::new(&config(2), 4, 64, Some(all_low));
        assert_eq!(ring.route_overrides(), 0);
        ring.add_route_override(10, 19, 1);
        assert_eq!(ring.route_overrides(), 1);
        assert_eq!(ingest_keys(&ring, 0, 30, |i| i as Key), 30);
        assert_eq!(ring.shard_available(0), 20, "keys outside the override");
        assert_eq!(ring.shard_available(1), 10, "keys 10..=19 rerouted");
        // A second, disjoint override stacks; overlapping ones are rejected.
        ring.add_route_override(25, 27, 1);
        assert_eq!(ring.route_overrides(), 2);
        assert!(std::panic::catch_unwind(|| ring.add_route_override(19, 26, 0)).is_err());
        assert!(std::panic::catch_unwind(|| ring.add_route_override(5, 10, 0)).is_err());
        // Installing the final partitioner clears every override.
        ring.set_partitioner(RangePartitioner::from_key_sample(
            2,
            &(0..30).collect::<Vec<Key>>(),
        ));
        assert_eq!(ring.route_overrides(), 0);
    }

    #[test]
    #[should_panic(expected = "route overrides need range routing")]
    fn route_overrides_require_a_partitioner() {
        let ring = ShardedRing::new(&config(2), 4, 16, None);
        ring.add_route_override(0, 10, 1);
    }

    #[test]
    fn home_claims_win_and_steals_cover_dry_homes() {
        // All keys route to shard 0 under this partitioner (single hot
        // range), so workers homed elsewhere must steal.
        let p = RangePartitioner::from_key_sample(3, &[]);
        let ring = ShardedRing::new(
            &ShardConfig::default().with_shards(3).with_steal_batch(2),
            4,
            32,
            Some(p),
        );
        assert_eq!(ingest_keys(&ring, 0, 10, |i| i as Key), 10);
        assert_eq!(ring.shard_available(0), 10);
        let (mut rc, mut sc) = counters();
        let mut out = Vec::new();
        // Home worker of shard 0 claims locally at full task size.
        let claim = ring.claim(0, 4, &mut out, &mut rc, &mut sc).unwrap();
        assert_eq!((claim.shard, claim.tuples, claim.stolen), (0, 4, false));
        // A worker homed on shard 1 must steal, at the steal batch size.
        let claim = ring.claim(1, 4, &mut out, &mut rc, &mut sc).unwrap();
        assert_eq!((claim.shard, claim.tuples, claim.stolen), (0, 2, true));
        assert_eq!(sc.steal_tasks, 1);
        assert_eq!(sc.stolen_tuples, 2);
        assert_eq!(ring.traffic().local(), 4);
        assert_eq!(ring.traffic().remote(), 2);
        assert!(ring.traffic().remote_fraction() > 0.0);
        // Draining everything claimed keeps the account intact.
        for t in &out {
            ring.complete(0, t.gid, 0, Vec::new());
        }
        assert_eq!(ring.try_drain(false, |_, _| {}), Some(6));
    }

    #[test]
    fn steal_threshold_defers_but_never_strands_work() {
        let p = RangePartitioner::from_key_sample(2, &[]);
        let ring = ShardedRing::new(
            &ShardConfig::default()
                .with_shards(2)
                .with_steal_batch(8)
                .with_steal_threshold(100),
            4,
            32,
            Some(p),
        );
        assert_eq!(ingest_keys(&ring, 0, 3, |i| i as Key), 3);
        // Shard 0 holds 3 tuples, far below the threshold of 100 — the
        // second (unconditional) pass must still pick them up for the worker
        // homed on shard 1.
        let (mut rc, mut sc) = counters();
        let mut out = Vec::new();
        let claim = ring.claim(1, 4, &mut out, &mut rc, &mut sc).unwrap();
        assert_eq!((claim.shard, claim.tuples, claim.stolen), (0, 3, true));
        assert!(ring.claim(1, 4, &mut out, &mut rc, &mut sc).is_none());
        assert_eq!(sc.claim_rounds_empty, 1);
    }

    #[test]
    fn cross_shard_drain_preserves_global_arrival_order() {
        // Alternate keys across two shards, complete everything in a
        // scrambled order, and check the drain interleaves the shards back
        // into the global arrival order.
        let p = RangePartitioner::from_key_sample(2, &(0..100).collect::<Vec<Key>>());
        let boundary = p.boundaries()[0];
        let ring = ShardedRing::new(&config(2), 4, 64, Some(p));
        // Even arrivals low keys (shard 0), odd arrivals high keys (shard 1).
        assert_eq!(
            ingest_keys(&ring, 0, 40, |i| {
                if i % 2 == 0 {
                    boundary
                } else {
                    boundary + 1
                }
            }),
            40
        );
        let (mut rc, mut sc) = counters();
        let mut tasks = Vec::new();
        let mut claims = Vec::new();
        for home in [0usize, 1] {
            loop {
                let before = tasks.len();
                match ring.claim(home, 3, &mut tasks, &mut rc, &mut sc) {
                    Some(claim) => {
                        for t in &tasks[before..] {
                            claims.push((claim.shard, t.gid, t.tuple.seq));
                        }
                    }
                    None => break,
                }
            }
        }
        assert_eq!(claims.len(), 40);
        // Nothing completed yet: the merge cursor stops immediately.
        assert_eq!(
            ring.try_drain(false, |_, _| panic!("nothing done")),
            Some(0)
        );
        // Complete in a scrambled (reversed) order; the result count encodes
        // the arrival so the drain order is observable.
        for &(shard, gid, seq) in claims.iter().rev() {
            ring.complete(shard, gid, seq, Vec::new());
        }
        let mut drained = Vec::new();
        assert_eq!(ring.try_drain(false, |n, _| drained.push(n)), Some(40));
        assert_eq!(
            drained,
            (0..40).collect::<Vec<u64>>(),
            "drain must follow global arrival order across shards"
        );
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn drain_stops_at_the_earliest_incomplete_arrival() {
        let ring = ShardedRing::new(&config(2), 4, 16, None);
        assert_eq!(ingest_keys(&ring, 0, 4, |_| 0), 4); // rr: 0,1,0,1
        let (mut rc, mut sc) = counters();
        let mut tasks = Vec::new();
        let c0 = ring.claim(0, 4, &mut tasks, &mut rc, &mut sc).unwrap();
        assert!(!c0.stolen);
        let c1 = ring.claim(1, 4, &mut tasks, &mut rc, &mut sc).unwrap();
        assert!(!c1.stolen);
        // Complete everything except the very first arrival (shard 0, gid of
        // the task whose seq is 0).
        for t in &tasks {
            if t.tuple.seq == 0 {
                continue;
            }
            let shard = (t.tuple.seq % 2) as usize;
            ring.complete(shard, t.gid, t.tuple.seq, Vec::new());
        }
        assert_eq!(
            ring.try_drain(false, |_, _| panic!("arrival 0 still pending")),
            Some(0)
        );
        let first = tasks.iter().find(|t| t.tuple.seq == 0).unwrap();
        ring.complete(0, first.gid, 0, Vec::new());
        let mut order = Vec::new();
        assert_eq!(ring.try_drain(false, |n, _| order.push(n)), Some(4));
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ingest_guard_is_exclusive_and_routed_capacity_gates() {
        let ring = ShardedRing::new(&config(2), 2, 4, None);
        let guard = ring.try_ingest().expect("token free");
        assert!(ring.try_ingest().is_none(), "second global token denied");
        // Fill shard 0 (arrivals 0, 2, 4, 6 under round-robin: push only when
        // routed there).
        let mut pushed = 0;
        let mut arrival = 0u64;
        while pushed < 4 {
            let shard = guard.route(0);
            if shard == 0 {
                assert!(guard.can_push(0));
                guard.push(0, Tuple::r(arrival, 0), WindowBounds::empty());
                pushed += 1;
            } else {
                assert!(guard.can_push(1));
                guard.push(
                    1,
                    Tuple::new(StreamSide::S, arrival, 0),
                    WindowBounds::empty(),
                );
            }
            arrival += 1;
        }
        assert!(!guard.can_push(0), "shard 0 full");
        assert!(guard.can_push(1), "shard 1 still has room");
        drop(guard);
        assert!(ring.try_ingest().is_some(), "token released on drop");
    }

    #[test]
    // Multi-threaded spin-wait stress: impractically slow under Miri's
    // interpreter; the model checker covers the interleavings instead.
    #[cfg_attr(miri, ignore)]
    fn concurrent_sharded_claims_and_drains_account_every_tuple() {
        use std::sync::atomic::AtomicU64 as Counter;
        let ring = std::sync::Arc::new(ShardedRing::new(
            &ShardConfig::default().with_shards(4).with_steal_batch(2),
            2,
            64,
            None,
        ));
        let total = 20_000u64;
        let claimed = std::sync::Arc::new(Counter::new(0));
        let drained = std::sync::Arc::new(Counter::new(0));
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let ring = ring.clone();
                let claimed = claimed.clone();
                let drained = drained.clone();
                scope.spawn(move || {
                    let (mut rc, mut sc) = counters();
                    let mut out = Vec::new();
                    loop {
                        out.clear();
                        if let Some(claim) = ring.claim(worker, 3, &mut out, &mut rc, &mut sc) {
                            for t in &out {
                                ring.complete(claim.shard, t.gid, 1, Vec::new());
                            }
                            claimed.fetch_add(claim.tuples as u64, Ordering::Relaxed);
                        }
                        let mut local = 0;
                        if let Some(n) = ring.try_drain(false, |count, _| local += count) {
                            assert_eq!(local, n);
                            drained.fetch_add(n, Ordering::Relaxed);
                        }
                        if drained.load(Ordering::Relaxed) == total {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            let ring = ring.clone();
            scope.spawn(move || {
                let mut next = 0u64;
                while next < total {
                    if let Some(guard) = ring.try_ingest() {
                        while next < total {
                            let key = (next % 97) as Key;
                            let shard = guard.route(key);
                            if !guard.can_push(shard) {
                                break;
                            }
                            guard.push(shard, Tuple::r(next, key), WindowBounds::empty());
                            next += 1;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(claimed.load(Ordering::Relaxed), total);
        assert_eq!(drained.load(Ordering::Relaxed), total);
        assert!(ring.is_empty());
        let t = ring.traffic();
        assert_eq!(t.local() + t.remote(), total);
        assert!(t.total_cost(ring.topology()) >= total * 90);
    }
}
