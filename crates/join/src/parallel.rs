//! The parallel shared-index window join engine (§4 of the paper), built on a
//! lock-free ring buffer for work distribution.
//!
//! Worker threads share both sliding windows and both indexes. Incoming
//! tuples are arranged in arrival order in a fixed-capacity MPMC task ring
//! ([`crate::ring::TaskRing`]); each worker repeatedly
//!
//! 1. **acquires a task** (up to `task_size` tuples) with a single bounded
//!    ticket-claim CAS — each slot carries the boundaries of the opposite
//!    window captured at ingestion,
//! 2. **generates results** by probing the opposite index for the already
//!    indexed window prefix and linearly scanning the window suffix past the
//!    *edge tuple* (the earliest non-indexed tuple) — by default the task's
//!    probe keys are sorted, deduplicated and answered with one software-
//!    prefetched CSS-Tree group descent per side (`generate_batched`;
//!    [`ProbeConfig`] switches back to the scalar per-tuple path),
//! 3. **publishes results** with one release store per slot (no lock), and
//!    **updates the index** with its tuples, trying to advance the edge, and
//! 4. **propagates results** of the completed ring prefix in arrival order:
//!    a try-token elects one draining worker which advances the cursor
//!    without ever blocking result generation.
//!
//! # How the ring replaces the shared work queue
//!
//! The original engine funnelled ingestion, acquisition, publication,
//! propagation and merge-horizon computation through one global mutex —
//! exactly the coordination cost the paper's shared-queue design is meant to
//! avoid. The ring splits those five concerns into independent lock-free
//! coordination points:
//!
//! * **Ingestion** happens behind a try-lock *ingest token*. Whichever
//!   worker finds the ring running low and wins the token batch-fills it:
//!   per tuple it checks admission control (the non-indexed window suffix
//!   stays bounded so probe scans stay short while merges defer index
//!   updates), snapshots the opposite window's bounds, appends to the own
//!   window, and publishes the slot. Losing the token means someone else is
//!   already supplying work, so the loser goes straight to claiming.
//! * **Acquisition** is a `compare_exchange` ticket claim over the ingested
//!   prefix — the only inter-worker contention on the fast path, measured by
//!   [`crate::stats::RingCounters::claim_retries`].
//! * **Propagation** advances a completed-prefix cursor. Ordering is
//!   structural: the cursor cannot pass an uncompleted slot, so results
//!   always leave in arrival order of the probing tuple.
//! * **The merge horizon** is folded from per-shard, per-side monotone
//!   counters maintained at claim time (see `merge_horizon`), instead of
//!   scanning every queued task under the queue lock.
//! * **Idle back-off** is adaptive (spin → yield → short park,
//!   [`crate::ring::Backoff`]) instead of a fixed 20µs sleep, so a worker
//!   that just missed work re-checks within nanoseconds.
//!
//! With `ShardConfig::shards > 1` the single ring becomes a
//! [`crate::shard::ShardedRing`]: per-NUMA-node ring shards behind a
//! key-range router ([`ParallelIbwj::with_partitioner`]), home-shard
//! claiming with bounded cross-shard stealing (charged to a simulated NUMA
//! traffic account), and a cross-shard merge cursor that preserves global
//! arrival-order propagation. One shard short-circuits to the plain ring.
//!
//! With `ShardConfig::partition_index` on top, the *index and window state*
//! is partitioned as well ([`crate::store::ShardStore`]): each shard owns one
//! index plus one window slice per side covering only its key range, inserts
//! route to the owning shard, and probes fan out across exactly the shards
//! whose ranges overlap the band-join range — the paper's §7 NUMA design,
//! where each socket serves its key range from local memory. The same
//! partitioner drives ring routing and store placement, so a worker's home
//! ring shard and home store shard coincide.
//!
//! # Invariants
//!
//! * Claimed slot ids are strictly increasing per the ticket counter; a slot
//!   is owned by exactly one worker between claim and publication.
//! * A task's probe sees every opposite-window tuple inside its bounds
//!   snapshot: tuples before the edge snapshot via the index, the rest via
//!   the linear window scan (an outdated edge only lengthens the scan).
//! * The engine's gate/in-flight handshake (`SeqCst` store-then-load on both
//!   sides) guarantees a merging thread observes either the gate stopping a
//!   worker's claim or that worker's task in `in_flight` — never neither.
//! * Merging with `merge_horizon` never drops an index entry that any
//!   claimed or future task may still probe: unclaimed tasks of a side have
//!   bounds at least as large as the last claimed one (windows only grow and
//!   ingestion is in arrival order), and the horizon additionally floors at
//!   the side's earliest live tuple.
//!
//! Index maintenance (the PIM-Tree merge) is coordinated by whichever worker
//! notices that the merge threshold has been reached: the two-phase
//! *non-blocking merge* of §4.2 lets the other workers keep joining (without
//! index updates) while the new `TS` is being built, whereas the blocking
//! variant (kept for the Figure 13c ablation) stalls all workers for the
//! duration of the merge.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pimtree_btree::Entry;
use pimtree_common::{
    BandPredicate, DriftConfig, JoinConfig, JoinResult, Key, KeyRange, LatencyHistogram,
    LatencyRecorder, MergePolicy, MigrationMode, ProbeConfig, Seq, StreamSide, Tuple,
};
use pimtree_numa::{handoff_steps, DriftMonitor, HandoffStep, RangePartitioner};
use pimtree_telemetry::{
    EnginePhase, GaugeSample, JsonlSink, StallCause, StallLap, TelemetryMode, TelemetryRegistry,
    WorkerRecorder,
};
use pimtree_window::WindowBounds;

use crate::gate::QuiesceGate;
use crate::ring::{Backoff, ClaimedTask, IdleKind};
use crate::shard::ShardedRing;
use crate::stats::{JoinRunStats, MigrationCounters};
use crate::store::{ShardStore, StoreParams};

/// Local drift observations a worker buffers while another worker holds the
/// drift-monitor lock; bounded because the monitor is a sampling window
/// anyway — dropping overflow under contention only thins the sample.
const DRIFT_BACKLOG_CAP: usize = 1024;

/// Which shared index the parallel engine maintains over each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedIndexKind {
    /// The PIM-Tree with the configured merge policy.
    PimTree,
    /// The Bw-Tree-style general-purpose concurrent index (no merges; expired
    /// tuples are deleted eagerly with a small lag).
    BwTree,
}

/// Per-shard, per-probe-side bookkeeping that makes the merge horizon a
/// handful of atomic reads.
///
/// `last_claimed_bound` is a running maximum over the bounds of every claimed
/// task of one shard and side. Because both window heads only grow and tuples
/// are ingested in arrival order, the bounds stored in a shard's slots are
/// non-decreasing in slot id per side (each shard receives a subsequence of
/// the global arrival order); a shard's claims take its slot ids in order, so
/// every *unclaimed* task of the side on that shard has bounds at least this
/// large — which makes the value a safe (conservative) stand-in for "the
/// oldest sequence number any pending task of this side on this shard may
/// still probe". Claims across shards are not ordered, so the counters must
/// stay per shard and the global horizon is their fold (minimum).
#[derive(Debug, Default)]
struct ClaimMeta {
    /// Tuples ingested whose probe targets this side.
    ingested: AtomicU64,
    /// Tuples claimed whose probe targets this side.
    claimed: AtomicU64,
    /// Maximum `bounds.earliest` over claimed tuples of this side.
    last_claimed_bound: AtomicU64,
}

/// Shared drift-monitoring state of the live-repartition path, behind one
/// mutex: workers flush `(key, match count)` observations through a
/// *try*-lock (contended flushes fall back to a bounded per-worker backlog),
/// and the periodic drift check turns a triggering sample into a `pending`
/// plan that whichever worker next passes the maintenance point adopts.
struct DriftState {
    monitor: DriftMonitor,
    /// The partitioner currently driving ring routing and store placement —
    /// what `should_repartition` measures drift against.
    partitioner: RangePartitioner,
    /// A plan that cleared the trigger and the cost gate, awaiting adoption
    /// at the next quiesce point.
    pending: Option<RangePartitioner>,
    /// Observations since the last drift check (the O(window) imbalance fold
    /// runs every `effective_check_interval`, not per task).
    since_check: usize,
    /// Total observations fed into the monitor (folded into
    /// `MigrationCounters` at the end of the run; kept here so the flush
    /// path never touches a second global lock).
    observations: u64,
    /// Plans rejected by the cost gate (or as no-ops), folded likewise.
    plans_rejected: u64,
}

/// The frontier of an in-flight incremental handoff (`--migration-mode
/// incremental`): the adopted plan decomposed into per-sub-range steps, plus
/// how far the handoff has progressed.
///
/// Invariants (all transitions run quiesced under the maintenance claim):
///
/// * Steps complete strictly in order; `next` is the first incomplete step.
/// * At most one step is *active* at a time — only its sub-range is ever
///   dual-owned in the store ([`crate::store`] tracks the moved-prefix cut
///   inside the active step).
/// * The routing swap to `new_partitioner` (and the bump of the store
///   epoch) happens only after every step completed, so an interrupted
///   handoff can always resume from `next` — including after the workers
///   exit with the handoff unfinished (see `complete_handoff`).
struct HandoffState {
    /// The partitioner adopted once every step has completed.
    new_partitioner: RangePartitioner,
    /// Disjoint key sub-ranges whose owner changes, in ascending key order.
    steps: Vec<HandoffStep>,
    /// Index of the first incomplete step.
    next: usize,
    /// Whether `steps[next]` has begun (its remainder is dual-owned).
    step_active: bool,
}

/// Open-loop arrival pacing for the SLO harness: tuple `measured_from + i`
/// of the input becomes *available* at `base + i * nanos_per_tuple`, and its
/// end-to-end latency is measured from that virtual arrival to the moment
/// the propagating worker drains its slot — so queueing delay behind a
/// stalled engine counts, unlike the closed-loop task latency.
struct OpenLoopPacing {
    base: Instant,
    nanos_per_tuple: u64,
    measured_from: usize,
}

struct Shared<'a> {
    input: &'a [Tuple],
    /// Exclusive upper bound on the input positions this batch may ingest.
    /// The warmup phase of a measured run processes a prefix of the input
    /// under the same engine state, then the limit is raised to the full
    /// length for the measured phase.
    ingest_limit: usize,
    predicate: BandPredicate,
    task_size: usize,
    /// How many available (not yet claimed) tuples an acquiring worker tries
    /// to keep in the ring: ingesting in bulk keeps every worker supplied
    /// without re-contending on the ingest token for every task.
    ingest_target: usize,
    /// Upper bound on the non-indexed window suffix (head minus edge tuple)
    /// admitted per side. Without a bound, the tuples processed while a merge
    /// defers index updates pile up un-indexed and every probe's linear scan
    /// grows with them — quadratic work that flattens multithreaded scaling
    /// and blows up latency. Ingestion stalls briefly once the bound is hit;
    /// the backlog drains as soon as the merge finishes replaying its pending
    /// updates.
    max_unindexed: usize,
    self_join: bool,
    /// Per-side index and window state: one shared pair per side, or — with
    /// `partition_index` on and several shards — one pair per shard behind a
    /// key-range partitioner (see [`crate::store`]).
    store: ShardStore,
    merge_policy: MergePolicy,
    collect_results: bool,
    backoff: pimtree_common::RingConfig,
    probe: ProbeConfig,

    ring: ShardedRing,
    /// Next input position to ingest; written only under the ingest token.
    next_ingest: AtomicUsize,
    /// Per-shard, per-probe-side claim progress for the O(shards) merge
    /// horizon (see [`merge_horizon`]): claims within one shard take slot ids
    /// in order, so the per-shard running maxima stay safe stand-ins for
    /// that shard's unclaimed bounds even though claims across shards are
    /// not globally ordered.
    claim_meta: Vec<[ClaimMeta; 2]>,
    /// The migration quiesce gate: stops task acquisition while a merge
    /// phase transition or repartition is pending and drains the in-flight
    /// count (see [`QuiesceGate`] for the handshake).
    gate: QuiesceGate,
    /// Set per side while a non-blocking merge is in phase 1: workers buffer
    /// their index updates instead of applying them.
    no_index_updates: [AtomicBool; 2],
    pending: [Mutex<Vec<(Key, Seq)>>; 2],
    merge_claimed: AtomicBool,
    merge_stats: Mutex<(u64, Duration)>,
    /// Drift monitoring for live repartition adoption; `None` when the
    /// feature is off (or the engine runs unsharded / unrouted), in which
    /// case the whole path costs one branch per task.
    drift: Option<Mutex<DriftState>>,
    drift_cfg: DriftConfig,
    /// Test/bench hook: adopt this partitioner once the ingest cursor passes
    /// the given input position, regardless of observed drift.
    forced_repartition: Option<(usize, RangePartitioner)>,
    forced_done: AtomicBool,
    /// Mirrors `DriftState::pending.is_some()` so the workers' per-loop
    /// "anything to adopt?" peek is one relaxed load instead of a try-lock
    /// that would contend with (and starve) the observation flush path.
    repartition_pending: AtomicBool,
    /// Run-level migration totals (epochs, moved entries, stall), filled by
    /// whichever workers performed the epochs.
    migration_totals: Mutex<MigrationCounters>,
    /// In-flight incremental handoff (`--migration-mode incremental`); only
    /// touched under the maintenance claim with the engine quiesced.
    handoff: Mutex<Option<HandoffState>>,
    /// Mirrors `handoff.is_some()` so the workers' per-loop peek is one
    /// relaxed load; while raised, `record_drift` stops staging new plans
    /// (they would be measured against the partitioner being replaced).
    handoff_active: AtomicBool,
    /// Open-loop arrival pacing; `None` runs closed-loop (as fast as the
    /// engine admits). Armed for the measured phase only.
    open_loop: Option<OpenLoopPacing>,
    /// Measured-phase slots drained so far, in global arrival order; pairs
    /// each drained slot with its virtual arrival time under open-loop
    /// pacing. Only advanced when `open_loop` is armed (the drain token
    /// makes the increment uncontended).
    drained_pos: AtomicUsize,
    /// End-to-end arrival→drain latency histogram (open-loop runs only).
    arrival_latency: Mutex<LatencyHistogram>,
    /// Result sink `(count, collected results)`. Its try-lock doubles as the
    /// election of the propagating worker, exactly like the paper's
    /// test-and-set scheme; the ring's internal drain token additionally
    /// protects the cursor, so the two can never disagree.
    sink: Mutex<(u64, Vec<JoinResult>)>,
    worker_stats: Mutex<Vec<JoinRunStats>>,
    /// The engine flight recorder: per-worker phase recorders, the
    /// stall-cause totals and (in full mode) their histograms, plus the
    /// aggregate event counter the live sampler reads. In `off` mode every
    /// instrumentation point degrades to one relaxed counter increment.
    telemetry: TelemetryRegistry,
}

impl<'a> Shared<'a> {
    #[inline]
    fn own_idx(&self, side: StreamSide) -> usize {
        if self.self_join {
            0
        } else {
            side.index()
        }
    }

    #[inline]
    fn probe_idx(&self, side: StreamSide) -> usize {
        if self.self_join {
            0
        } else {
            side.opposite().index()
        }
    }

    #[inline]
    fn matched_side(&self, side: StreamSide) -> StreamSide {
        if self.self_join {
            StreamSide::R
        } else {
            side.opposite()
        }
    }
}

/// The parallel index-based window join operator.
#[derive(Debug, Clone)]
pub struct ParallelIbwj {
    config: JoinConfig,
    predicate: BandPredicate,
    kind: SharedIndexKind,
    self_join: bool,
    collect_results: bool,
    partitioner: Option<RangePartitioner>,
    forced_repartition: Option<(usize, RangePartitioner)>,
    open_loop_rate: Option<f64>,
    telemetry_out: Option<String>,
}

impl ParallelIbwj {
    /// Creates the operator. `config.threads` worker threads are used,
    /// `config.pim` configures the PIM-Tree (including its merge policy),
    /// `config.ring` tunes the task ring and idle back-off, and
    /// `config.shard` shards the ring across simulated NUMA nodes.
    pub fn new(
        config: JoinConfig,
        predicate: BandPredicate,
        kind: SharedIndexKind,
        self_join: bool,
    ) -> Self {
        config.validate().expect("invalid join configuration");
        ParallelIbwj {
            config,
            predicate,
            kind,
            self_join,
            collect_results: false,
            partitioner: None,
            forced_repartition: None,
            open_loop_rate: None,
            telemetry_out: None,
        }
    }

    /// Streams periodic gauge samples (ring occupancy per shard, in-flight
    /// count, window sizes, steal counters, drift imbalance, handoff
    /// frontier) as JSON Lines to `path` during the measured phase, sampled
    /// every `config.telemetry.sample_interval_ms`, and dumps the end-of-run
    /// telemetry report in the Prometheus text format to `path` + `.prom`.
    /// Requires a telemetry mode other than `off` to be useful, but works in
    /// every mode (gauges do not depend on phase timing).
    pub fn with_telemetry_out(mut self, path: impl Into<String>) -> Self {
        self.telemetry_out = Some(path.into());
        self
    }

    /// Selects how an adopted repartition plan is applied: one wholesale
    /// migration epoch ([`MigrationMode::Epoch`]) or a sequence of bounded
    /// per-sub-range handoff steps ([`MigrationMode::Incremental`]).
    /// Shorthand for setting `config.drift.migration_mode`.
    pub fn with_migration_mode(mut self, mode: MigrationMode) -> Self {
        self.config.drift.migration_mode = mode;
        self
    }

    /// Paces ingestion as an open-loop arrival process at `rate` tuples per
    /// second: measured-phase tuple `i` only becomes available for ingestion
    /// at its virtual arrival time `i / rate`, and the reported
    /// [`JoinRunStats::arrival_latency`] histogram measures arrival →
    /// propagation per tuple — so time spent queued behind a stalled or
    /// saturated engine counts toward the tail, which a closed-loop run
    /// hides (coordinated omission).
    pub fn with_open_loop(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "open-loop arrival rate must be positive"
        );
        self.open_loop_rate = Some(rate);
        self
    }

    /// Collect result tuples (for tests); by default only counts are kept.
    pub fn with_collected_results(mut self, collect: bool) -> Self {
        self.collect_results = collect;
        self
    }

    /// Routes ingestion by key range: each tuple is ingested on the ring
    /// shard owning its key interval instead of round-robin. The
    /// partitioner's node count must equal `config.shard.shards`.
    pub fn with_partitioner(mut self, partitioner: RangePartitioner) -> Self {
        assert_eq!(
            partitioner.nodes(),
            self.config.shard.shards,
            "partitioner and shard config disagree on the shard count"
        );
        self.partitioner = Some(partitioner);
        self
    }

    /// Forces a repartition epoch mid-run: once ingestion passes input
    /// position `at`, the engine quiesces, adopts `partitioner` (ring
    /// routing plus, under the partitioned store, a full shard-state
    /// migration) and resumes — regardless of observed drift. The test and
    /// bench hook behind the `PIMTREE_TEST_REPARTITION` differential sweep:
    /// it exercises the exact epoch protocol the drift trigger uses, at a
    /// deterministic point. The partitioner's node count must equal
    /// `config.shard.shards`.
    pub fn with_forced_repartition(mut self, at: usize, partitioner: RangePartitioner) -> Self {
        assert_eq!(
            partitioner.nodes(),
            self.config.shard.shards,
            "partitioner and shard config disagree on the shard count"
        );
        self.forced_repartition = Some((at, partitioner));
        self
    }

    /// Runs the join over a tuple sequence, returning statistics and (when
    /// enabled) the results in arrival order of the probing tuple.
    pub fn run(&self, tuples: &[Tuple]) -> (JoinRunStats, Vec<JoinResult>) {
        self.run_with_warmup(tuples, 0)
    }

    /// Runs the join over a tuple sequence, excluding the first `warmup`
    /// tuples from the reported statistics.
    ///
    /// The warmup prefix is processed by the same engine state (windows fill
    /// up, the PIM-Tree goes through its first merge and gains its partition
    /// structure), mirroring how the single-threaded operators are measured
    /// after their windows are warm. Timing, throughput and per-phase counters
    /// cover only the remaining tuples; the result stream (when collection is
    /// enabled) still contains every match, including those produced during
    /// warmup, so correctness checks can cover the whole sequence.
    pub fn run_with_warmup(
        &self,
        tuples: &[Tuple],
        warmup: usize,
    ) -> (JoinRunStats, Vec<JoinResult>) {
        self.run_inner(tuples, warmup, None)
    }

    /// Runs the join like [`ParallelIbwj::run_with_warmup`] and hands the
    /// engine's [`ShardStore`] to `inspect` after the run, before teardown —
    /// the hook the per-shard footprint tests use to assert that a shard's
    /// index and window never hold a key outside its range.
    pub fn run_with_store_inspector(
        &self,
        tuples: &[Tuple],
        warmup: usize,
        inspect: impl FnOnce(&ShardStore),
    ) -> (JoinRunStats, Vec<JoinResult>) {
        let mut inspect = Some(inspect);
        self.run_inner(
            tuples,
            warmup,
            Some(&mut |store: &ShardStore| {
                if let Some(f) = inspect.take() {
                    f(store);
                }
            }),
        )
    }

    fn run_inner(
        &self,
        tuples: &[Tuple],
        warmup: usize,
        inspect: Option<&mut dyn FnMut(&ShardStore)>,
    ) -> (JoinRunStats, Vec<JoinResult>) {
        let warmup = warmup.min(tuples.len());
        let threads = self.config.threads;
        let task_size = self.config.task_size;
        let shards = self.config.shard.shards;
        let ring_cap = if self.config.ring.capacity > 0 {
            self.config.ring.capacity
        } else {
            (threads * task_size * 64).max(4096)
        };
        // `ring.capacity` configures the *total* capacity; each shard gets an
        // equal slice, floored so even a deliberately tiny ring leaves every
        // shard room for a whole task.
        let per_shard_cap = (ring_cap / shards)
            .max(2 * task_size)
            .max(4)
            .next_power_of_two();
        // One partitioner drives both layers: ring-shard routing and (with
        // `partition_index` on) the per-shard index/window placement, so a
        // worker's home ring shard and home store shard coincide. When the
        // partitioned store is requested without an explicit partitioner,
        // one is derived from the input's key sample (the same policy the
        // bench harness applies to ring routing). Drift-driven repartitioning
        // needs a key-range router to measure drift against, so `--repartition
        // on` derives one too.
        let partitioned = self.config.shard.partition_index && shards > 1;
        let drift_on = self.config.drift.repartition && shards > 1;
        let partitioner = match (&self.partitioner, partitioned || drift_on) {
            (Some(p), _) => Some(p.clone()),
            (None, true) => {
                // A bounded strided subsample picks (nearly) the same
                // boundaries as the full key set at O(1) memory — the
                // partitioner only needs N − 1 quantiles, not every key.
                let step = (tuples.len() / 4096).max(1);
                let sample: Vec<Key> = tuples.iter().step_by(step).map(|t| t.key).collect();
                Some(RangePartitioner::from_key_sample(shards, &sample))
            }
            (None, false) => None,
        };
        let ring = ShardedRing::new(
            &self.config.shard,
            task_size,
            per_shard_cap,
            partitioner.clone(),
        );
        // Total capacity across shards: the bound on how far any in-flight
        // task can lag the ingest frontier.
        let ring_cap = ring.capacity();
        let max_unindexed = (8 * threads * task_size).max(1024);
        // The window must keep slots readable well past expiry: in-flight
        // tasks reach back up to one ring capacity of ingests, and the
        // Bw-Tree's eager expiry deletion reads keys of tuples that can lag
        // the head by the admission bound plus a window plus a ring lap —
        // so the slack budgets for both the ring and the admission bound.
        let slack = 2 * ring_cap + max_unindexed + 1024;
        let ingest_target = if self.config.ring.ingest_target > 0 {
            self.config.ring.ingest_target.min(ring_cap)
        } else {
            // Upper bound floors at task_size so a deliberately tiny ring
            // (capacity down to 2 * task_size) cannot invert the clamp.
            (threads * task_size).clamp(task_size, (ring_cap / 4).max(task_size))
        };

        let window_sizes = if self.self_join {
            [self.config.window_r, 1]
        } else {
            [self.config.window_r, self.config.window_s]
        };
        let mut pim_cfg = self.config.pim;
        pim_cfg.window_size = self.config.max_window();
        let store = ShardStore::new(
            StoreParams {
                kind: self.kind,
                pim: pim_cfg,
                window_sizes,
                slack,
                deletion_lag: ring_cap as u64,
            },
            partitioned.then(|| {
                partitioner
                    .clone()
                    .expect("partitioned store needs a partitioner")
            }),
        );

        let mut shared = Shared {
            input: tuples,
            ingest_limit: if warmup > 0 { warmup } else { tuples.len() },
            predicate: self.predicate,
            task_size,
            self_join: self.self_join,
            ingest_target,
            max_unindexed,
            store,
            merge_policy: self.config.pim.merge_policy,
            collect_results: self.collect_results,
            backoff: self.config.ring,
            probe: self.config.probe,
            ring,
            next_ingest: AtomicUsize::new(0),
            claim_meta: (0..shards).map(|_| Default::default()).collect(),
            gate: QuiesceGate::new(),
            no_index_updates: [AtomicBool::new(false), AtomicBool::new(false)],
            pending: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            merge_claimed: AtomicBool::new(false),
            merge_stats: Mutex::new((0, Duration::ZERO)),
            drift: if drift_on {
                partitioner.clone().map(|p| {
                    Mutex::new(DriftState {
                        monitor: DriftMonitor::new(
                            self.config.drift.window,
                            self.config.drift.imbalance_trigger,
                        ),
                        partitioner: p,
                        pending: None,
                        since_check: 0,
                        observations: 0,
                        plans_rejected: 0,
                    })
                })
            } else {
                None
            },
            drift_cfg: self.config.drift,
            forced_repartition: self.forced_repartition.clone(),
            forced_done: AtomicBool::new(false),
            repartition_pending: AtomicBool::new(false),
            migration_totals: Mutex::new(MigrationCounters::default()),
            handoff: Mutex::new(None),
            handoff_active: AtomicBool::new(false),
            open_loop: None,
            drained_pos: AtomicUsize::new(0),
            arrival_latency: Mutex::new(LatencyHistogram::new()),
            sink: Mutex::new((0, Vec::new())),
            worker_stats: Mutex::new(Vec::new()),
            telemetry: TelemetryRegistry::new(self.config.telemetry.mode, threads),
        };

        // Warmup phase: process the prefix with the same engine state, then
        // discard the counters it accumulated (results are kept).
        let mut warmup_results = Vec::new();
        if warmup > 0 {
            std::thread::scope(|scope| {
                let shared = &shared;
                for worker in 0..threads {
                    scope.spawn(move || worker_loop(shared, worker));
                }
            });
            shared.worker_stats.lock().clear();
            *shared.merge_stats.lock() = (0, Duration::ZERO);
            // Migration totals follow the same convention as the merge
            // stats: epochs adopted during warmup keep their effect (the
            // partitioner stays adopted) but only measured-phase counters
            // are reported.
            *shared.migration_totals.lock() = MigrationCounters::default();
            if let Some(drift) = &shared.drift {
                let mut st = drift.lock();
                st.observations = 0;
                st.plans_rejected = 0;
            }
            shared.telemetry.reset();
            let (_, results) = std::mem::take(&mut *shared.sink.lock());
            warmup_results = results;
            shared.ingest_limit = tuples.len();
        }
        // The ring's and store's traffic accounts span both phases; remember
        // the warmup baselines so the reported counters cover only the
        // measured tuples.
        let (warm_local, warm_remote) = (
            shared.ring.traffic().local(),
            shared.ring.traffic().remote(),
        );
        let (warm_store_local, warm_store_remote) = match shared.store.traffic() {
            Some(t) => (t.local(), t.remote()),
            None => (0, 0),
        };

        let measured = (tuples.len() - warmup) as u64;
        let start = Instant::now();
        // Open-loop pacing covers the measured phase only: warmup fills the
        // windows as fast as the engine admits, then the arrival clock
        // starts with the measurement.
        shared.open_loop = self.open_loop_rate.map(|rate| OpenLoopPacing {
            base: start,
            nanos_per_tuple: (1.0e9 / rate).round().max(0.0) as u64,
            measured_from: warmup,
        });
        // Live gauge export: a sampler thread runs alongside the measured
        // phase, appending one JSONL record per interval; the stop flag is
        // raised once every worker has exited so the sampler never outlives
        // the engine state it reads.
        let sampler_stop = AtomicBool::new(false);
        let sampler_sink = self.telemetry_out.as_deref().and_then(|path| {
            JsonlSink::create(path)
                .map_err(|e| eprintln!("telemetry: cannot create {path}: {e}"))
                .ok()
        });
        std::thread::scope(|scope| {
            let shared = &shared;
            let workers: Vec<_> = (0..threads)
                .map(|worker| scope.spawn(move || worker_loop(shared, worker)))
                .collect();
            let sampler = sampler_sink.map(|sink| {
                let stop = &sampler_stop;
                let interval = Duration::from_millis(self.config.telemetry.sample_interval_ms);
                scope.spawn(move || run_sampler(shared, sink, interval, start, stop))
            });
            for handle in workers {
                handle.join().expect("worker thread panicked");
            }
            sampler_stop.store(true, Ordering::Release);
            if let Some(handle) = sampler {
                handle.join().expect("telemetry sampler panicked");
            }
        });
        let elapsed = start.elapsed();
        // An incremental handoff interrupted by input exhaustion resumes
        // from its frontier and runs to completion before the store is
        // inspected, so post-run state always respects the adopted
        // ownership (its remaining stalls still land in the counters).
        complete_handoff(&shared);

        let mut stats = JoinRunStats {
            tuples: measured,
            elapsed,
            ..Default::default()
        };
        for w in shared.worker_stats.lock().iter() {
            stats.absorb(w);
        }
        stats.tuples = measured;
        stats.shard.shards = shared.ring.shards() as u64;
        stats.shard.local_accesses = shared.ring.traffic().local() - warm_local;
        stats.shard.remote_accesses = shared.ring.traffic().remote() - warm_remote;
        stats.shard.simulated_numa_cost = stats.shard.local_accesses
            * shared.ring.topology().local_cost
            + stats.shard.remote_accesses * shared.ring.topology().remote_cost;
        if shared.store.is_partitioned() {
            stats.store.partitioned = 1;
            stats.store.store_shards = shared.store.shards() as u64;
            let (traffic, topology) = (
                shared
                    .store
                    .traffic()
                    .expect("partitioned store has traffic"),
                shared
                    .store
                    .topology()
                    .expect("partitioned store has topology"),
            );
            stats.store.simulated_store_cost = (traffic.local() - warm_store_local)
                * topology.local_cost
                + (traffic.remote() - warm_store_remote) * topology.remote_cost;
        }
        if shared.open_loop.is_some() {
            stats.arrival_latency = Some(std::mem::take(&mut *shared.arrival_latency.lock()));
        }
        stats.migration = *shared.migration_totals.lock();
        if let Some(drift) = &shared.drift {
            let st = drift.lock();
            stats.migration.observations += st.observations;
            stats.migration.plans_rejected += st.plans_rejected;
        }
        stats.migration.enabled =
            (shared.drift.is_some() || shared.forced_repartition.is_some()) as u64;
        let report = shared.telemetry.report();
        if let Some(path) = self.telemetry_out.as_deref() {
            // The Prometheus text dump rides on the JSONL path: one scrape-
            // style snapshot at drain, next to the live samples.
            let prom_path = format!("{path}.prom");
            if let Err(e) = std::fs::write(&prom_path, report.to_prometheus()) {
                eprintln!("telemetry: cannot write {prom_path}: {e}");
            }
        }
        if shared.telemetry.mode() != TelemetryMode::Off {
            stats.telemetry = Some(report);
        }
        if let Some(inspect) = inspect {
            inspect(&shared.store);
        }
        let (merges, merge_time) = *shared.merge_stats.lock();
        stats.merges = merges;
        stats.merge_time = merge_time;
        let (count, results) = std::mem::take(&mut *shared.sink.lock());
        stats.results = count;
        if self.collect_results {
            warmup_results.extend(results);
            (stats, warmup_results)
        } else {
            (stats, results)
        }
    }
}

// ------------------------------------------------------------------ worker

/// Buffers reused across tasks by one worker so that the steady-state path
/// performs no heap allocation per tuple.
struct WorkerScratch {
    /// Tuples of the current task, straight out of the ring claim.
    items: Vec<ClaimedTask>,
    /// The ring shard the current task was claimed from (home or victim);
    /// slot completion must go back to the same shard.
    task_shard: usize,
    /// Tuples destined for each side's index, inserted as one batch per task.
    inserts: [Vec<(Key, Seq)>; 2],
    /// This task's probe ranges, grouped per probe-side index.
    probe_ranges: [Vec<KeyRange>; 2],
    /// The opposite-window bounds snapshot behind each entry of
    /// `probe_ranges`.
    probe_bounds: [Vec<WindowBounds>; 2],
    /// The item index behind each entry of `probe_ranges`.
    probe_items: [Vec<usize>; 2],
    /// Per-item match counts.
    counts: Vec<u64>,
    /// Per-item collected results (moved into the ring slot when the item
    /// completes).
    collected: Vec<Vec<JoinResult>>,
    /// Drift observations buffered while the monitor lock was contended
    /// (bounded; overflow is dropped — the monitor samples anyway).
    drift_backlog: Vec<(Key, u64)>,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            items: Vec::new(),
            task_shard: 0,
            inserts: [Vec::new(), Vec::new()],
            probe_ranges: [Vec::new(), Vec::new()],
            probe_bounds: [Vec::new(), Vec::new()],
            probe_items: [Vec::new(), Vec::new()],
            counts: Vec::new(),
            collected: Vec::new(),
            drift_backlog: Vec::new(),
        }
    }
}

fn worker_loop(shared: &Shared<'_>, worker: usize) {
    let mut local = JoinRunStats::default();
    let mut latency = LatencyRecorder::new();
    let mut scratch = WorkerScratch::new();
    let mut backoff = Backoff::new(&shared.backoff);
    let mut recorder = shared.telemetry.recorder(worker);
    // Workers are pinned round-robin to a home shard; on a real NUMA host
    // this is where the worker's thread would also be pinned to the shard's
    // socket.
    let home = worker % shared.ring.shards();
    loop {
        maybe_repartition(shared);
        maybe_merge(shared, home, &mut local, &mut recorder);
        let acquire_start = Instant::now();
        let acquired = acquire_task(shared, home, &mut scratch, &mut local, &mut recorder);
        let acquire_span = acquire_start.elapsed();
        local.phase.acquire += acquire_span;
        recorder.record_nanos(EnginePhase::Claim, acquire_span.as_nanos() as u64);
        if acquired {
            let acquired_at = Instant::now();
            process_task(
                shared,
                home,
                acquired_at,
                &mut scratch,
                &mut local,
                &mut latency,
                &mut recorder,
            );
            shared.gate.exit();
            backoff.reset();
            let propagate_start = Instant::now();
            propagate(shared, &mut local);
            local.phase.propagate += propagate_start.elapsed();
        } else {
            let propagate_start = Instant::now();
            propagate(shared, &mut local);
            local.phase.propagate += propagate_start.elapsed();
            if is_finished(shared) {
                break;
            }
            // Nothing to do right now (gate closed, ring momentarily empty,
            // or ingestion paused by admission control). Retry the edge
            // advancement — a lost try-lock race must not leave the edge
            // stale with no indexing work left to trigger another attempt —
            // then back off adaptively instead of hammering the shared
            // counters that the productive workers need.
            shared.store.try_advance_edge(0);
            if !shared.self_join {
                shared.store.try_advance_edge(1);
            }
            let idle_start = Instant::now();
            match backoff.idle() {
                IdleKind::Spin => local.ring.idle_spins += 1,
                IdleKind::Yield => local.ring.idle_yields += 1,
                IdleKind::Park => local.ring.idle_parks += 1,
            }
            local.phase.idle += idle_start.elapsed();
        }
    }
    recorder.finish();
    local.latency = latency;
    shared.worker_stats.lock().push(local);
}

fn is_finished(shared: &Shared<'_>) -> bool {
    shared.next_ingest.load(Ordering::Acquire) == shared.ingest_limit && shared.ring.is_empty()
}

// --------------------------------------------------------------- telemetry

/// The live gauge sampler: snapshots the engine's observable state every
/// `interval` and appends one JSON line per snapshot (the schema is pinned
/// by `docs/telemetry-schema.json`). Reads are relaxed loads and try-locks
/// only — the sampler never blocks a worker; a contended drift or handoff
/// lock simply reports the idle value for that round. One final sample is
/// taken after the stop flag rises, so the drained end state is always in
/// the trace.
fn run_sampler(
    shared: &Shared<'_>,
    mut sink: JsonlSink,
    interval: Duration,
    start: Instant,
    stop: &AtomicBool,
) {
    let mut seq = 0u64;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let sample = gauge_sample(shared, seq, start);
        if let Err(e) = sink.append(&sample) {
            eprintln!("telemetry: sample write failed: {e}");
            return;
        }
        seq += 1;
        if stopping {
            break;
        }
        std::thread::sleep(interval);
    }
    if let Err(e) = sink.finish() {
        eprintln!("telemetry: sink flush failed: {e}");
    }
}

/// Snapshots the engine gauges for one sampler round. Counters read here are
/// individually monotone but not mutually consistent — the sample is a
/// statistical observation, not a transaction.
fn gauge_sample(shared: &Shared<'_>, seq: u64, start: Instant) -> GaugeSample {
    let window = |side: usize| {
        let b = shared.store.bounds(side);
        b.latest_exclusive.saturating_sub(b.earliest)
    };
    let drift_imbalance = shared
        .drift
        .as_ref()
        .and_then(|d| d.try_lock().map(|st| st.monitor.imbalance(&st.partitioner)))
        .unwrap_or(0.0);
    let (handoff_steps_done, handoff_steps_total) = shared
        .handoff
        .try_lock()
        .and_then(|slot| {
            slot.as_ref()
                .map(|st| (st.next as u64, st.steps.len() as u64))
        })
        .unwrap_or((0, 0));
    GaugeSample {
        seq,
        elapsed_us: start.elapsed().as_micros() as u64,
        in_flight: shared.gate.in_flight() as u64,
        shard_occupancy: (0..shared.ring.shards())
            .map(|s| shared.ring.shard_available(s) as u64)
            .collect(),
        unindexed_r: shared.store.unindexed_len(0),
        unindexed_s: shared.store.unindexed_len(1),
        window_r: window(0),
        window_s: window(1),
        local_claims: shared.ring.traffic().local(),
        stolen_claims: shared.ring.traffic().remote(),
        drift_imbalance,
        handoff_steps_done,
        handoff_steps_total,
        events: shared.telemetry.events(),
    }
}

/// Tries to acquire a task from the ring, topping the ring up through the
/// ingest token when it runs low.
///
/// The `in_flight` increment happens *before* the gate check while the
/// merging thread stores the gate *before* reading `in_flight` (both
/// `SeqCst`): in every interleaving the merger either sees this worker's
/// increment and waits, or the worker sees the closed gate and backs out —
/// a claim can never slip past a closing gate unnoticed.
fn acquire_task(
    shared: &Shared<'_>,
    home: usize,
    scratch: &mut WorkerScratch,
    local: &mut JoinRunStats,
    recorder: &mut WorkerRecorder,
) -> bool {
    if !shared.gate.try_enter() {
        return false;
    }
    if shared.ring.available() < shared.ingest_target {
        let clock = recorder.clock();
        try_ingest(shared, local);
        recorder.commit(EnginePhase::Ingest, clock);
    }
    scratch.items.clear();
    let Some(claim) = shared.ring.claim(
        home,
        shared.task_size,
        &mut scratch.items,
        &mut local.ring,
        &mut local.shard,
    ) else {
        shared.gate.exit();
        return false;
    };
    scratch.task_shard = claim.shard;
    // Record claim progress per (shard, probe side) for the O(shards) merge
    // horizon. This happens while the task is counted in `in_flight`, so a
    // merger that observed quiescence is guaranteed to see it.
    for task in &scratch.items {
        let probe = shared.probe_idx(task.tuple.side);
        let meta = &shared.claim_meta[claim.shard][probe];
        meta.last_claimed_bound
            .fetch_max(task.bounds.earliest, Ordering::AcqRel);
        meta.claimed.fetch_add(1, Ordering::Release);
    }
    true
}

/// Batch-fills the ring through the ingest token (no-op when another worker
/// holds it). Admission control and window appends keep the exact semantics
/// of the mutex-based engine: the opposite window's bounds are snapshotted
/// *before* the tuple is appended to its own window (which matters for
/// self-joins), and ingestion stalls while a window's non-indexed suffix
/// exceeds its bound. Each tuple is routed to the ring shard owning its key
/// range (round-robin without a partitioner); a full *routed* shard stalls
/// ingestion entirely, because admitting later arrivals on other shards
/// would break the global arrival order the merge cursor relies on.
fn try_ingest(shared: &Shared<'_>, local: &mut JoinRunStats) {
    let Some(guard) = shared.ring.try_ingest() else {
        local.ring.ingest_token_contended += 1;
        return;
    };
    let mut pos = shared.next_ingest.load(Ordering::Relaxed);
    let mut ingested_any = false;
    while pos < shared.ingest_limit && shared.ring.available() < shared.ingest_target {
        // Open-loop pacing: a tuple whose virtual arrival time has not come
        // yet is simply not available — the worker goes back to draining
        // whatever is queued (arrival order is preserved because ingestion
        // is sequential in `pos`).
        if let Some(ol) = &shared.open_loop {
            if pos >= ol.measured_from {
                let due =
                    ((pos - ol.measured_from) as u64).saturating_mul(ol.nanos_per_tuple) as u128;
                if ol.base.elapsed().as_nanos() < due {
                    break;
                }
            }
        }
        let t = shared.input[pos];
        // Capacity of the routed shard is checked before the window append so
        // that a published window tuple is always matched by a published ring
        // slot.
        let shard = guard.route(t.key);
        if !guard.can_push(shard) {
            if shared.ring.shards() > 1 {
                local.shard.shard_full_stalls += 1;
            }
            break;
        }
        let own = shared.own_idx(t.side);
        if shared.store.unindexed_len(own) as usize >= shared.max_unindexed {
            local.ring.ingest_stalls += 1;
            break;
        }
        let probe = shared.probe_idx(t.side);
        let bounds = shared.store.bounds(probe);
        let seq = shared
            .store
            .append(own, t.key)
            .expect("sliding window slack exhausted");
        debug_assert_eq!(
            seq, t.seq,
            "input sequence numbers must match arrival order"
        );
        guard.push(shard, t, bounds);
        shared.claim_meta[shard][probe]
            .ingested
            .fetch_add(1, Ordering::Release);
        pos += 1;
        shared.next_ingest.store(pos, Ordering::Release);
        ingested_any = true;
    }
    if ingested_any {
        local.ring.ingest_batches += 1;
    }
}

fn process_task(
    shared: &Shared<'_>,
    home: usize,
    acquired_at: Instant,
    scratch: &mut WorkerScratch,
    local: &mut JoinRunStats,
    latency: &mut LatencyRecorder,
    recorder: &mut WorkerRecorder,
) {
    let entry_bytes = std::mem::size_of::<Entry>() as u64;
    // Step 2: result generation. Each tuple's results are published to its
    // ring slot with a single release store the moment they are ready, so
    // the draining worker can start propagating the prefix while this task
    // is still working on its remaining tuples.
    let generate_start = Instant::now();
    generate(shared, home, scratch, local);
    let generate_span = generate_start.elapsed();
    local.phase.generate += generate_span;
    recorder.record_nanos(EnginePhase::Probe, generate_span.as_nanos() as u64);
    // Feed the drift monitor with this task's `(key, match count)` pairs —
    // the paper's combined insert+output load signal per key interval.
    if shared.drift.is_some() {
        record_drift(shared, scratch);
    }
    // Latency is the task processing time (§5): acquisition to results ready.
    let task_latency = acquired_at.elapsed();
    for _ in 0..scratch.items.len() {
        latency.record(task_latency);
    }
    // Step 3: index update, batched per side so the generation lock and the
    // shared counters are touched once per task instead of once per tuple.
    // The store routes each entry to the shard owning its key, retires newly
    // expired entries of eager-deletion backends, marks the inserted tuples
    // indexed and advances the edge(s).
    let update_start = Instant::now();
    scratch.inserts[0].clear();
    scratch.inserts[1].clear();
    for &ClaimedTask { tuple, .. } in &scratch.items {
        let own = shared.own_idx(tuple.side);
        if shared.no_index_updates[own].load(Ordering::Acquire) {
            shared.pending[own].lock().push((tuple.key, tuple.seq));
        } else {
            scratch.inserts[own].push((tuple.key, tuple.seq));
        }
    }
    for own in 0..2 {
        if scratch.inserts[own].is_empty() {
            continue;
        }
        shared
            .store
            .insert_batch(own, &scratch.inserts[own], home, local);
        local.bytes_stored += scratch.inserts[own].len() as u64 * entry_bytes;
    }
    let update_span = update_start.elapsed();
    local.phase.update += update_span;
    recorder.record_nanos(EnginePhase::Expiry, update_span.as_nanos() as u64);
}

/// Result generation: the whole task's probes are gathered per probe side and
/// answered through the store — the batched CSS group descent or the scalar
/// per-range path ([`pimtree_common::ProbeConfig::batch`]), against the shared
/// index/window pair or fanned out across the store shards overlapping each
/// band-join range.
///
/// Each tuple's edge snapshot is taken inside the store *before* the index
/// probe it covers and used for both the index filter and the window-scan
/// start, which keeps the two sides of the edge split consistent per tuple —
/// a snapshot that is a little stale only lengthens the linear scan, never
/// changes the result set (§4.1). Ring slots are still completed per tuple,
/// so ordered propagation is unaffected.
fn generate(
    shared: &Shared<'_>,
    home: usize,
    scratch: &mut WorkerScratch,
    local: &mut JoinRunStats,
) {
    let n = scratch.items.len();
    let collect = shared.collect_results;
    scratch.counts.clear();
    scratch.counts.resize(n, 0);
    scratch.collected.clear();
    scratch.collected.resize_with(n, Vec::new);
    for side in 0..2 {
        scratch.probe_ranges[side].clear();
        scratch.probe_bounds[side].clear();
        scratch.probe_items[side].clear();
    }
    for (i, &ClaimedTask { tuple, bounds, .. }) in scratch.items.iter().enumerate() {
        let probe = shared.probe_idx(tuple.side);
        scratch.probe_ranges[probe].push(shared.predicate.probe_range(tuple.key));
        scratch.probe_bounds[probe].push(bounds);
        scratch.probe_items[probe].push(i);
    }
    for side in 0..2 {
        if scratch.probe_ranges[side].is_empty() {
            continue;
        }
        let items = &scratch.items;
        let idxs = &scratch.probe_items[side];
        let counts = &mut scratch.counts;
        let collected = &mut scratch.collected;
        shared.store.generate(
            side,
            &scratch.probe_ranges[side],
            &scratch.probe_bounds[side],
            &shared.probe,
            home,
            local,
            &mut |j, seq, key| {
                let i = idxs[j];
                counts[i] += 1;
                if collect {
                    let item = &items[i];
                    let matched = shared.matched_side(item.tuple.side);
                    collected[i].push(JoinResult::new(item.tuple, Tuple::new(matched, seq, key)));
                }
            },
        );
    }
    // Slot publication, per tuple, in task order.
    let task_shard = scratch.task_shard;
    for (i, &ClaimedTask { gid, .. }) in scratch.items.iter().enumerate() {
        let count = scratch.counts[i];
        let results = std::mem::take(&mut scratch.collected[i]);
        local.bytes_stored += count * std::mem::size_of::<JoinResult>() as u64;
        local.results += count;
        local.tuples += 1;
        shared.ring.complete(task_shard, gid, count, results);
    }
}

/// Propagates the completed ring prefix into the sink in arrival order.
///
/// The paper's test-and-set scheme: the sink try-lock elects at most one
/// propagating worker; everyone else goes straight back to useful work. The
/// elected worker drains directly from the ring cursor into the sink — no
/// intermediate buffer, no lock held across result generation.
fn propagate(shared: &Shared<'_>, local: &mut JoinRunStats) {
    let Some(mut sink) = shared.sink.try_lock() else {
        local.ring.drain_contended += 1;
        return;
    };
    let collect = shared.collect_results;
    // Under open-loop pacing, stamp each drained slot's end-to-end latency:
    // drain time minus the slot's virtual arrival time. Slots drain in
    // global arrival order (a structural ring invariant), so the drain
    // cursor position *is* the arrival index.
    let mut arrivals = shared
        .open_loop
        .as_ref()
        .map(|ol| (ol, shared.arrival_latency.lock(), Instant::now()));
    let drained = shared.ring.try_drain(collect, |count, results| {
        sink.0 += count;
        if collect {
            sink.1.extend(results);
        }
        if let Some((ol, hist, now)) = arrivals.as_mut() {
            let i = shared.drained_pos.fetch_add(1, Ordering::Relaxed) as u64;
            let due_nanos = i.saturating_mul(ol.nanos_per_tuple);
            let elapsed = now.saturating_duration_since(ol.base).as_nanos() as u64;
            hist.record_nanos(elapsed.saturating_sub(due_nanos));
        }
    });
    if let Some(n) = drained {
        if n > 0 {
            local.ring.drain_batches += 1;
            local.ring.slots_drained += n;
        }
    }
}

// ------------------------------------------------------------- repartition

/// Flushes a task's `(key, match count)` observations into the drift
/// monitor and, every `effective_check_interval` observations, turns a
/// triggering sample into a pending repartition plan.
///
/// The monitor lock is only ever *try*-acquired here: a contended flush
/// stashes the observations in the worker's bounded backlog instead of
/// blocking the hot path. Plans that fail the cost gate (or that reproduce
/// the current boundaries) are rejected and the monitor cools down, so the
/// same stale sample can neither oscillate nor re-plan every check.
fn record_drift(shared: &Shared<'_>, scratch: &mut WorkerScratch) {
    let Some(drift) = &shared.drift else { return };
    let Some(mut st) = drift.try_lock() else {
        let room = DRIFT_BACKLOG_CAP.saturating_sub(scratch.drift_backlog.len());
        for (i, task) in scratch.items.iter().enumerate().take(room) {
            scratch
                .drift_backlog
                .push((task.tuple.key, scratch.counts[i]));
        }
        return;
    };
    let mut observed = 0u64;
    for (key, weight) in scratch.drift_backlog.drain(..) {
        st.monitor.observe(key, weight);
        observed += 1;
    }
    for (i, task) in scratch.items.iter().enumerate() {
        st.monitor.observe(task.tuple.key, scratch.counts[i]);
        observed += 1;
    }
    st.since_check += observed as usize;
    st.observations += observed;
    // While an incremental handoff is in flight no new plan is staged: it
    // would be measured against the partitioner currently being replaced
    // (observations keep flowing — the sample stays warm for the next
    // check after the handoff finalizes).
    if st.pending.is_none()
        && !shared.handoff_active.load(Ordering::Relaxed)
        && st.since_check >= shared.drift_cfg.effective_check_interval()
    {
        st.since_check = 0;
        if st.monitor.should_repartition(&st.partitioner) {
            let plan = st.monitor.plan(&st.partitioner);
            if plan.moved_fraction <= shared.drift_cfg.cost_gate
                && plan.new_partitioner != st.partitioner
            {
                st.pending = Some(plan.new_partitioner);
                shared.repartition_pending.store(true, Ordering::Release);
            } else {
                // Too costly (or a no-op): not worth a migration epoch. The
                // cooldown makes the next decision wait for a fresh window
                // instead of re-planning from the same sample every check.
                st.plans_rejected += 1;
                st.monitor.note_adoption();
            }
        }
    }
}

/// Adopts a pending (or forced) repartition plan through a migration epoch.
/// Called outside the `in_flight` window, like [`maybe_merge`]: the epoch
/// closes the same gate a blocking merge does, so it must not count itself
/// as an in-flight task.
///
/// The epoch protocol — quiesce → swap → migrate → resume:
///
/// 1. **Claim.** The engine's single maintenance claim (`merge_claimed`)
///    serialises epochs against merges: a migration never swaps a tree out
///    from under a running merge, and never observes a half-merged side
///    (phase-1 pending buffers are always drained before the claim is
///    released).
/// 2. **Quiesce.** The gate stops task acquisition *and* ingestion (workers
///    only ingest behind the gate check), then the epoch waits for
///    `in_flight == 0`. Tuples not yet ingested simply wait in the input —
///    the "staging buffer" needs no copy. Tuples already in the ring keep
///    the shard the old routing chose; home claims and the unconditional
///    steal pass drain them, and arrival stamps keep propagation in global
///    order regardless of which shard holds them.
/// 3. **Swap + migrate.** The ring router swaps to the new partitioner, and
///    the store re-homes every index entry and window tuple whose key
///    changed shards (see `ShardStore::adopt_partitioner`), charging each
///    move to the simulated traffic account.
/// 4. **Resume.** The gate reopens; stalled ingestion re-routes subsequent
///    input under the new partitioner.
fn maybe_repartition(shared: &Shared<'_>) {
    // Incremental handoff (requires shard state to hand off — without the
    // partitioned store a "migration" is just the ring router swap, for
    // which the epoch path below is already minimal).
    let incremental = shared.drift_cfg.migration_mode == MigrationMode::Incremental
        && shared.store.is_partitioned();
    if incremental && shared.handoff_active.load(Ordering::Acquire) {
        // A handoff is in flight: perform its next bounded transition. New
        // plan peeks wait until it finalizes.
        handoff_visit(shared, None);
        return;
    }
    // Forced adoption (deterministic test/bench hook).
    let forced = match &shared.forced_repartition {
        Some((at, p))
            if !shared.forced_done.load(Ordering::Acquire)
                && shared.next_ingest.load(Ordering::Acquire) >= *at =>
        {
            Some(p.clone())
        }
        _ => None,
    };
    // Drift-driven adoption: anything pending? One relaxed load — a
    // try-lock peek here would contend with record_drift's flush try-lock
    // on every worker-loop iteration and thin the drift sample.
    let drift_pending = forced.is_none() && shared.repartition_pending.load(Ordering::Acquire);
    if forced.is_none() && !drift_pending {
        return;
    }
    if incremental {
        handoff_visit(shared, forced);
        return;
    }
    if shared.merge_claimed.swap(true, Ordering::AcqRel) {
        return; // a merge or another epoch is in progress; retry later
    }
    let mut lap = StallLap::start();
    close_gate_and_wait_attributed(shared, &mut lap);
    // Re-resolve the plan under the claim: the forced flag and the pending
    // plan may have been consumed by a racing epoch between the peek above
    // and the claim.
    let new_partitioner = if let Some(p) = forced {
        if shared.forced_done.swap(true, Ordering::SeqCst) {
            None
        } else {
            Some(p)
        }
    } else {
        shared.drift.as_ref().and_then(|d| d.lock().pending.take())
    };
    let Some(new_partitioner) = new_partitioner else {
        open_gate(shared);
        shared.merge_claimed.store(false, Ordering::Release);
        return;
    };
    shared.ring.set_partitioner(new_partitioner.clone());
    lap.lap(StallCause::RouterSwap);
    let migrated = shared.store.adopt_partitioner(&new_partitioner);
    // Split the wholesale migration over its measured sub-phases; any
    // bookkeeping slack between the outer lap and the store's inner clocks
    // is attributed to the dominant rebuild phase.
    if let Some(m) = &migrated {
        lap.lap_split(
            &[
                (StallCause::WindowSnapshot, m.snapshot_nanos),
                (StallCause::Rebuild, m.rebuild_nanos),
                (StallCause::IndexSwap, m.swap_nanos),
            ],
            StallCause::Rebuild,
        );
    } else {
        lap.lap(StallCause::Rebuild);
    }
    if let Some(drift) = &shared.drift {
        let mut st = drift.lock();
        st.partitioner = new_partitioner;
        // Drop any plan computed against the *previous* partitioner — after
        // a forced adoption it would otherwise survive and migrate the
        // freshly adopted state right back in the next epoch — then clear
        // the stale pre-migration sample and cool down, so adoption cannot
        // oscillate (the satellite regression). The pending flag is lowered
        // *while the lock is held*: lowering it after release could clobber
        // a flusher that staged (and flagged) a fresh plan in between,
        // leaving that plan invisible to every future peek.
        st.pending = None;
        st.monitor.note_adoption();
        shared.repartition_pending.store(false, Ordering::Release);
    } else {
        shared.repartition_pending.store(false, Ordering::Release);
    }
    open_gate(shared);
    shared.merge_claimed.store(false, Ordering::Release);
    // The tail (drift bookkeeping + gate reopen) rides on the gate cause:
    // it is the cost of operating the gate, not of moving state.
    lap.lap(StallCause::GateClose);
    let breakdown = lap.finish();
    shared.telemetry.record_stall(&breakdown);
    let remote_cost = shared
        .store
        .topology()
        .unwrap_or_else(|| shared.ring.topology())
        .remote_cost;
    let mut totals = shared.migration_totals.lock();
    totals.epochs += 1;
    totals.record_stall_breakdown(&breakdown);
    if let Some(m) = migrated {
        totals.index_entries_moved += m.index_entries_moved;
        totals.window_tuples_moved += m.window_tuples_moved;
        totals.simulated_move_cost += (m.index_entries_moved + m.window_tuples_moved) * remote_cost;
    }
}

/// What one quiesced visit of the incremental handoff protocol did.
enum HandoffTransition {
    /// Began the next step: its sub-range became dual-owned (new appends
    /// re-routed to the destination; probes fan out to both homes).
    Begun,
    /// Moved one budgeted chunk of the active step between its shard pair.
    Advanced(crate::store::StoreMigration),
    /// Every step done: routing and ownership swapped to the new
    /// partitioner, handoff dismantled.
    Finalized,
}

/// Performs one bounded transition of an incremental handoff under the
/// maintenance claim — the incremental counterpart of the epoch body in
/// [`maybe_repartition`]. Each visit quiesces the engine only for its own
/// short transition (consume a plan and begin its first step, move one
/// budgeted chunk, or finalize); ingestion and probing resume in between,
/// which is exactly what bounds the per-stall tail (the epoch path pays for
/// the whole migration in one quiesce).
fn handoff_visit(shared: &Shared<'_>, forced: Option<RangePartitioner>) {
    if shared.merge_claimed.swap(true, Ordering::AcqRel) {
        return; // a merge or another maintenance visit is in progress
    }
    let mut lap = StallLap::start();
    close_gate_and_wait_attributed(shared, &mut lap);
    let outcome = handoff_transition(shared, forced, &mut lap);
    open_gate(shared);
    shared.merge_claimed.store(false, Ordering::Release);
    // Residual transition bookkeeping + gate reopen, as in the epoch path.
    lap.lap(StallCause::GateClose);
    let Some(outcome) = outcome else { return };
    let breakdown = lap.finish();
    shared.telemetry.record_stall(&breakdown);
    let remote_cost = shared
        .store
        .topology()
        .unwrap_or_else(|| shared.ring.topology())
        .remote_cost;
    let mut totals = shared.migration_totals.lock();
    totals.record_stall_breakdown(&breakdown);
    match outcome {
        HandoffTransition::Begun => {}
        HandoffTransition::Advanced(m) => {
            totals.handoff_steps += 1;
            totals.index_entries_moved += m.index_entries_moved;
            totals.window_tuples_moved += m.window_tuples_moved;
            totals.simulated_move_cost +=
                (m.index_entries_moved + m.window_tuples_moved) * remote_cost;
        }
        HandoffTransition::Finalized => totals.epochs += 1,
    }
}

/// The transition body of [`handoff_visit`]; runs with the gate closed, the
/// engine quiescent and the maintenance claim held. Returns `None` when
/// there was nothing to do (the staged plan was consumed by a racing visit
/// between the caller's peek and the claim).
fn handoff_transition(
    shared: &Shared<'_>,
    forced: Option<RangePartitioner>,
    lap: &mut StallLap,
) -> Option<HandoffTransition> {
    let mut slot = shared.handoff.lock();
    if slot.is_none() {
        // Re-resolve the plan under the claim, exactly like the epoch path.
        let new = if let Some(p) = forced {
            (!shared.forced_done.swap(true, Ordering::SeqCst)).then_some(p)
        } else {
            shared.drift.as_ref().and_then(|d| {
                let mut st = d.lock();
                let p = st.pending.take();
                if p.is_some() {
                    // Lowered while the lock is held, for the same reason as
                    // in the epoch path.
                    shared.repartition_pending.store(false, Ordering::Release);
                }
                p
            })
        };
        let new = new?;
        let current = shared
            .store
            .partitioner()
            .expect("incremental handoff requires a partitioned store");
        let steps = handoff_steps(&current, &new);
        *slot = Some(HandoffState {
            new_partitioner: new,
            steps,
            next: 0,
            step_active: false,
        });
        shared.handoff_active.store(true, Ordering::Release);
        // Fall through: a no-op plan (no steps) finalizes right away, a
        // real one begins its first step in this same quiesce.
    }
    let st = slot.as_mut().expect("handoff state ensured above");
    if st.step_active {
        let adv = shared
            .store
            .advance_handoff_step(shared.drift_cfg.effective_handoff_budget());
        // The frontier cut never leaves the active step's sub-range.
        debug_assert!(
            (st.steps[st.next].lo..=st.steps[st.next].hi).contains(&adv.cut),
            "handoff frontier left its step range"
        );
        if adv.done {
            st.step_active = false;
            st.next += 1;
        }
        // Split the budgeted chunk move over the store's measured sub-phases
        // (cut selection counts as the snapshot share).
        lap.lap_split(
            &[
                (StallCause::WindowSnapshot, adv.migration.snapshot_nanos),
                (StallCause::Rebuild, adv.migration.rebuild_nanos),
                (StallCause::IndexSwap, adv.migration.swap_nanos),
            ],
            StallCause::Rebuild,
        );
        return Some(HandoffTransition::Advanced(adv.migration));
    }
    if let Some(&step) = st.steps.get(st.next) {
        shared
            .store
            .begin_handoff_step(step.lo, step.hi, step.src, step.dst);
        // New arrivals of the whole step range go to the destination ring
        // shard immediately (store appends follow suit), so the sub-range
        // stops accumulating state at the source while it drains.
        shared.ring.add_route_override(step.lo, step.hi, step.dst);
        st.step_active = true;
        // Beginning a step is a routing change: the override install is the
        // whole cost of this quiesce.
        lap.lap(StallCause::RouterSwap);
        return Some(HandoffTransition::Begun);
    }
    // Every sub-range is fully moved: swap the routing wholesale (this
    // clears the per-step overrides), retire the handoff overlay, and do
    // the same drift bookkeeping as an epoch adoption so staged-but-stale
    // plans cannot replay against the freshly adopted partitioner.
    let new = st.new_partitioner.clone();
    shared.ring.set_partitioner(new.clone());
    shared.store.finish_handoff(&new);
    if let Some(drift) = &shared.drift {
        let mut d = drift.lock();
        d.partitioner = new;
        d.pending = None;
        d.monitor.note_adoption();
        shared.repartition_pending.store(false, Ordering::Release);
    }
    *slot = None;
    shared.handoff_active.store(false, Ordering::Release);
    // Finalization swaps the wholesale routing: a router change end to end.
    lap.lap(StallCause::RouterSwap);
    Some(HandoffTransition::Finalized)
}

/// Drives an incremental handoff left in flight by input exhaustion to
/// completion. The workers have exited, so the remaining transitions run
/// back to back on the coordinating thread; resumability from the frontier
/// is exactly what makes this a plain loop.
fn complete_handoff(shared: &Shared<'_>) {
    // The forced-repartition hook is a deterministic contract: once its
    // trigger point has been ingested, the plan is adopted. Workers check
    // the trigger on their loop, but when the trigger sits in the input's
    // tail every worker can drain its remaining tasks and exit between the
    // final ingest and its next maintenance visit — so an armed,
    // unconsumed trigger is consumed here (epoch adoption runs inline;
    // incremental begins the handoff the loop below then drains).
    let forced_armed = matches!(
        &shared.forced_repartition,
        Some((at, _)) if !shared.forced_done.load(Ordering::Acquire)
            && shared.next_ingest.load(Ordering::Acquire) >= *at
    );
    if forced_armed {
        maybe_repartition(shared);
    }
    while shared.handoff_active.load(Ordering::Acquire) {
        handoff_visit(shared, None);
    }
}

// ------------------------------------------------------------------- merge

fn close_gate_and_wait(shared: &Shared<'_>) {
    shared.gate.close();
    shared.gate.await_quiesce();
}

/// [`close_gate_and_wait`] with stall-cause attribution: the gate store and
/// the in-flight drain spin become the first two laps of the quiesce, so the
/// per-cause segments tile the stall exactly from its first instruction.
fn close_gate_and_wait_attributed(shared: &Shared<'_>, lap: &mut StallLap) {
    shared.gate.close();
    lap.lap(StallCause::GateClose);
    shared.gate.await_quiesce();
    lap.lap(StallCause::InFlightDrain);
}

fn open_gate(shared: &Shared<'_>) {
    shared.gate.open();
}

/// The oldest sequence number (per merged side) that any queued or future
/// task may still probe; merging with this horizon guarantees that no
/// in-flight task loses index entries it relies on.
///
/// Called with the gate closed and the engine quiescent (`in_flight == 0`),
/// so the only tasks that still need old entries are the ingested-but-
/// unclaimed ones. Per shard, their bounds are at least that shard's
/// `last_claimed_bound` (bounds are non-decreasing in slot id per side —
/// each shard receives a subsequence of the globally ordered ingest — and a
/// shard's claims take its slot ids in order). Claims across shards are
/// *not* globally ordered, which is exactly why the counters are kept per
/// shard: the global horizon is the fold (minimum) of the per-shard monotone
/// counters, a handful of atomic reads instead of a ring scan. The result is
/// never larger than the true minimum, which keeps it safe — at worst a few
/// already-expired tuples survive one extra merge.
fn merge_horizon(shared: &Shared<'_>, side: usize) -> Seq {
    let mut horizon = shared.store.earliest_live(side);
    for shard_meta in &shared.claim_meta {
        let meta = &shard_meta[side];
        if meta.ingested.load(Ordering::Acquire) > meta.claimed.load(Ordering::Acquire) {
            horizon = horizon.min(meta.last_claimed_bound.load(Ordering::Acquire));
        }
    }
    horizon
}

fn maybe_merge(
    shared: &Shared<'_>,
    home: usize,
    local: &mut JoinRunStats,
    recorder: &mut WorkerRecorder,
) {
    for side in 0..if shared.self_join { 1 } else { 2 } {
        if shared.store.merge_candidate(side).is_none() {
            continue;
        }
        if shared.merge_claimed.swap(true, Ordering::AcqRel) {
            return; // another thread is already merging
        }
        // Re-check under the claim; under the partitioned store each shard's
        // tree merges independently, one shard per claim (a subsequent claim
        // picks up the next shard over the threshold).
        let Some(shard) = shared.store.merge_candidate(side) else {
            shared.merge_claimed.store(false, Ordering::Release);
            return;
        };
        let Some(pim) = shared.store.pim(side, shard) else {
            shared.merge_claimed.store(false, Ordering::Release);
            return;
        };
        let merge_start = Instant::now();
        let report = match shared.merge_policy {
            MergePolicy::Blocking => {
                close_gate_and_wait(shared);
                let horizon = merge_horizon(shared, side);
                let report = pim.merge(horizon);
                open_gate(shared);
                report
            }
            MergePolicy::NonBlocking => {
                // Phase 1: stop index updates for this side, then build the
                // next generation while the other workers keep joining.
                close_gate_and_wait(shared);
                shared.no_index_updates[side].store(true, Ordering::Release);
                let horizon = merge_horizon(shared, side);
                open_gate(shared);
                let prepared = pim.begin_merge(horizon);
                // Phase 2: swap the tree under a closed gate, then re-open it
                // *before* replaying the updates buffered during phase 1 — the
                // paper's workers resume joining (with index updates) while the
                // merging thread drains the pending list. Pending tuples stay
                // reachable through the linear window scan until they are
                // marked indexed, so probes remain correct throughout. The
                // replay goes through the store, which routes each buffered
                // tuple back to the shard owning its key (phase 1 buffered the
                // whole side, not just the merging shard).
                close_gate_and_wait(shared);
                let report = pim.install_merge(prepared);
                let pending = std::mem::take(&mut *shared.pending[side].lock());
                shared.no_index_updates[side].store(false, Ordering::Release);
                open_gate(shared);
                for chunk in pending.chunks(4096) {
                    shared.store.insert_batch(side, chunk, home, local);
                }
                report
            }
        };
        local.breakdown.record_nanos(
            pimtree_common::Step::Merge,
            report.duration.as_nanos() as u64,
        );
        recorder.record_nanos(EnginePhase::Merge, report.duration.as_nanos() as u64);
        {
            let mut ms = shared.merge_stats.lock();
            ms.0 += 1;
            ms.1 += merge_start.elapsed();
        }
        shared.merge_claimed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{canonical, reference_join};
    use pimtree_common::{IndexKind, PimConfig, RingConfig, ShardConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64, 0u64];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, rng.gen_range(0..domain))
            })
            .collect()
    }

    fn self_join_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| Tuple::r(i, rng.gen_range(0..domain)))
            .collect()
    }

    fn config(
        w: usize,
        threads: usize,
        task: usize,
        merge_ratio: f64,
        policy: MergePolicy,
    ) -> JoinConfig {
        let mut pim = PimConfig::for_window(w)
            .with_merge_ratio(merge_ratio)
            .with_insertion_depth(2)
            .with_merge_policy(policy);
        pim.css_fanout = 8;
        pim.css_leaf_size = 8;
        pim.btree_fanout = 8;
        JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(task)
            .with_pim(pim)
    }

    #[test]
    fn single_thread_matches_reference() {
        let tuples = random_tuples(3000, 400, 31);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        let op = ParallelIbwj::new(
            config(128, 1, 4, 0.5, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert_eq!(stats.results as usize, expected.len());
        assert!(
            stats.merges > 0,
            "merge ratio 0.5 over 3000 tuples must merge"
        );
    }

    #[test]
    fn multi_thread_matches_reference_nonblocking() {
        let tuples = random_tuples(6000, 600, 32);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 256, 256, false));
        assert!(!expected.is_empty());
        for threads in [2, 4, 8] {
            let op = ParallelIbwj::new(
                config(256, threads, 4, 0.5, MergePolicy::NonBlocking),
                predicate,
                SharedIndexKind::PimTree,
                false,
            )
            .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn multi_thread_matches_reference_blocking_merge() {
        let tuples = random_tuples(5000, 500, 33);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 200, 200, false));
        let op = ParallelIbwj::new(
            config(200, 4, 3, 0.25, MergePolicy::Blocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert!(stats.merges > 0);
    }

    #[test]
    fn bwtree_backend_matches_reference() {
        let tuples = random_tuples(4000, 500, 34);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        for threads in [1, 4] {
            let op = ParallelIbwj::new(
                config(128, threads, 4, 1.0, MergePolicy::NonBlocking),
                predicate,
                SharedIndexKind::BwTree,
                false,
            )
            .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn self_join_matches_reference() {
        let tuples = self_join_tuples(4000, 300, 35);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for threads in [1, 4] {
            let op = ParallelIbwj::new(
                config(128, threads, 4, 0.5, MergePolicy::NonBlocking),
                predicate,
                SharedIndexKind::PimTree,
                true,
            )
            .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn warmup_run_produces_identical_results_and_reduced_counters() {
        let tuples = random_tuples(4000, 400, 39);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 4, 4, 0.5, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (full_stats, full_results) = op.run(&tuples);
        let (warm_stats, warm_results) = op.run_with_warmup(&tuples, 1000);
        // The result stream is the same whether or not a warmup prefix is
        // excluded from the statistics.
        assert_eq!(canonical(&warm_results), canonical(&full_results));
        // Only the post-warmup tuples are counted.
        assert_eq!(warm_stats.tuples, full_stats.tuples - 1000);
        assert!(warm_stats.results <= full_stats.results);
        // Warmup longer than the input degenerates to an empty measurement.
        let (empty_stats, all_results) = op.run_with_warmup(&tuples, tuples.len() + 10);
        assert_eq!(empty_stats.tuples, 0);
        assert_eq!(canonical(&all_results), canonical(&full_results));
    }

    #[test]
    fn results_are_propagated_in_arrival_order() {
        let tuples = random_tuples(3000, 200, 36);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 6, 2, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert!(!results.is_empty());
        // The probing tuple's position in the input must be non-decreasing
        // across the propagated result stream.
        let mut pos_of = std::collections::HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            pos_of.insert((t.side, t.seq), i);
        }
        let positions: Vec<usize> = results
            .iter()
            .map(|r| pos_of[&(r.probe.side, r.probe.seq)])
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] <= w[1]),
            "result propagation must preserve arrival order"
        );
    }

    #[test]
    fn asymmetric_windows_match_reference() {
        let tuples = random_tuples(4000, 300, 37);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 512, false));
        let mut cfg = config(512, 4, 4, 1.0, MergePolicy::NonBlocking);
        cfg.window_r = 64;
        cfg.window_s = 512;
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
    }

    #[test]
    fn empty_input_and_tiny_input() {
        let predicate = BandPredicate::new(1);
        let op = ParallelIbwj::new(
            config(64, 4, 8, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (stats, results) = op.run(&[]);
        assert_eq!(stats.results, 0);
        assert!(results.is_empty());
        let (stats, _) = op.run(&[Tuple::r(0, 5)]);
        assert_eq!(stats.tuples, 1);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn latency_and_traffic_are_recorded() {
        let tuples = random_tuples(2000, 400, 38);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 4, 4, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        );
        let (stats, _) = op.run(&tuples);
        assert_eq!(stats.latency.len() as u64, stats.tuples);
        assert!(stats.latency.mean_micros() > 0.0);
        assert!(stats.bytes_loaded > 0);
        assert!(stats.bytes_stored > 0);
    }

    #[test]
    fn ring_counters_reflect_the_run() {
        let tuples = random_tuples(3000, 300, 40);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 4, 4, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        );
        let (stats, _) = op.run(&tuples);
        assert_eq!(
            stats.ring.tuples_acquired, 3000,
            "every tuple claimed exactly once"
        );
        assert_eq!(
            stats.ring.slots_drained, 3000,
            "every slot propagated exactly once"
        );
        assert!(
            stats.ring.tasks_acquired >= 3000 / 4,
            "tasks hold at most task_size tuples"
        );
        assert!(stats.ring.ingest_batches > 0);
        assert!(stats.ring.mean_task_size() > 0.0);
    }

    /// The tentpole differential: the batched group probe and the scalar
    /// probe must produce the exact same result set under both merge
    /// policies and both shared-index backends, and only the batched run may
    /// touch the probe-batch counters.
    #[test]
    fn batched_probe_matches_scalar_and_reference() {
        let tuples = random_tuples(5000, 400, 81);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
                for threads in [1usize, 4] {
                    let base = config(128, threads, 4, 0.5, policy);
                    let batched = ParallelIbwj::new(
                        base.with_probe(ProbeConfig::default()),
                        predicate,
                        kind,
                        false,
                    )
                    .with_collected_results(true);
                    let scalar = ParallelIbwj::new(
                        base.with_probe(ProbeConfig::scalar()),
                        predicate,
                        kind,
                        false,
                    )
                    .with_collected_results(true);
                    let (batched_stats, batched_results) = batched.run(&tuples);
                    let (scalar_stats, scalar_results) = scalar.run(&tuples);
                    let label = format!("{policy:?}/{kind:?}/{threads}T");
                    assert_eq!(canonical(&batched_results), expected, "batched {label}");
                    assert_eq!(canonical(&scalar_results), expected, "scalar {label}");
                    // The scalar path never group-descends, dedups or
                    // prefetches; its only counters are the batched TI
                    // partition locks (the ROADMAP's scalar partition-routing
                    // follow-up), and those only for the PIM-Tree backend.
                    assert_eq!(scalar_stats.probe.batches, 0, "{label}");
                    assert_eq!(scalar_stats.probe.batched_keys, 0, "{label}");
                    assert_eq!(scalar_stats.probe.dedup_hits, 0, "{label}");
                    assert_eq!(scalar_stats.probe.nodes_prefetched, 0, "{label}");
                    assert_eq!(scalar_stats.probe.scalar_probes, 0, "{label}");
                    if kind == SharedIndexKind::PimTree {
                        assert!(
                            scalar_stats.probe.ti_partition_locks
                                <= scalar_stats.probe.ti_range_visits,
                            "scalar TI partition locks are shared per task ({label})"
                        );
                        assert!(batched_stats.probe.batches > 0, "batched {label}");
                        assert_eq!(batched_stats.probe.scalar_probes, 0, "{label}");
                    } else {
                        assert_eq!(scalar_stats.probe.ti_partition_locks, 0, "{label}");
                        // The Bw-Tree has no batched path: every probe of a
                        // batched run falls back to the scalar probe.
                        assert_eq!(batched_stats.probe.batches, 0, "{label}");
                        assert!(batched_stats.probe.scalar_probes > 0, "{label}");
                    }
                }
            }
        }
    }

    /// Duplicate-heavy keys: a tiny key domain makes many probe ranges in a
    /// task identical, exercising the sort/dedup path of the group probe.
    #[test]
    fn batched_probe_with_duplicate_keys_matches_reference() {
        let tuples = random_tuples(5000, 12, 82);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            let op = ParallelIbwj::new(
                config(128, 4, 8, 0.5, policy),
                predicate,
                SharedIndexKind::PimTree,
                false,
            )
            .with_collected_results(true);
            let (stats, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "{policy:?}");
            assert!(
                stats.probe.dedup_hits > 0,
                "a 12-key domain must produce duplicate probe ranges in a task of 8"
            );
        }
    }

    /// Window-edge case: probe ranges reaching past both ends of the key
    /// domain, plus a window as large as the whole input (nothing ever
    /// expires) and a window of 1 (everything expires immediately).
    #[test]
    fn batched_probe_at_window_and_domain_edges() {
        let tuples = random_tuples(2000, 50, 83);
        let predicate = BandPredicate::new(100); // ranges always overflow the domain
        for w in [1usize, 4096] {
            let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
            for probe in [
                ProbeConfig::default(),
                ProbeConfig::default().with_interleave(8),
                ProbeConfig::scalar(),
                ProbeConfig::scalar().with_interleave(8),
            ] {
                let op = ParallelIbwj::new(
                    config(w, 2, 4, 1.0, MergePolicy::NonBlocking).with_probe(probe),
                    predicate,
                    SharedIndexKind::PimTree,
                    false,
                )
                .with_collected_results(true);
                let (_, results) = op.run(&tuples);
                assert_eq!(canonical(&results), expected, "w={w}, probe={probe:?}");
            }
        }
    }

    /// Self-join through the batched probe, with prefetching disabled and at
    /// a large distance (the knob must never change results).
    #[test]
    fn batched_probe_prefetch_distance_is_result_invariant() {
        let tuples = self_join_tuples(3000, 200, 84);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for dist in [0usize, 1, 64] {
            let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
                .with_probe(ProbeConfig::default().with_prefetch_dist(dist));
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, true)
                .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "prefetch_dist {dist}");
        }
    }

    /// The ISSUE's stress configuration: many threads, tiny tasks, and a ring
    /// small enough that every slot is recycled dozens of times, under both
    /// merge policies.
    #[test]
    fn ring_stress_tiny_capacity_both_policies() {
        let tuples = random_tuples(6000, 500, 91);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for (threads, task) in [(8, 1), (16, 2)] {
                // Capacity 64 over 6000 tuples: ~94 wraparounds per run.
                let cfg = config(128, threads, task, 0.5, policy).with_ring(
                    RingConfig::default()
                        .with_capacity(64)
                        .with_backoff(2, 4, 10),
                );
                let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                    .with_collected_results(true);
                let (stats, results) = op.run(&tuples);
                assert_eq!(
                    canonical(&results),
                    expected,
                    "policy {policy:?}, threads {threads}, task_size {task}"
                );
                assert_eq!(stats.ring.tuples_acquired, 6000);
                assert_eq!(stats.ring.slots_drained, 6000);
            }
        }
    }

    #[test]
    fn ring_stress_self_join_tiny_capacity() {
        let tuples = self_join_tuples(5000, 250, 92);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            let cfg = config(128, 8, 1, 0.5, policy).with_ring(
                RingConfig::default()
                    .with_capacity(32)
                    .with_backoff(2, 4, 10),
            );
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, true)
                .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "policy {policy:?}");
        }
    }

    #[test]
    fn ring_stress_asymmetric_windows_tiny_capacity() {
        let tuples = random_tuples(5000, 300, 93);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 512, false));
        assert!(!expected.is_empty());
        let mut cfg = config(512, 12, 2, 0.5, MergePolicy::NonBlocking).with_ring(
            RingConfig::default()
                .with_capacity(64)
                .with_backoff(2, 4, 10),
        );
        cfg.window_r = 64;
        cfg.window_s = 512;
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
    }

    #[test]
    fn tiny_explicit_capacity_with_large_task_size_runs() {
        // Regression: capacity 16 with the default task size 8 used to panic
        // in the auto ingest-target clamp (`min > max`). The configuration
        // passes validation, so the engine must accept it.
        let tuples = random_tuples(1500, 150, 95);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 64, false));
        for cap in [16, 32] {
            let cfg = config(64, 2, 8, 1.0, MergePolicy::NonBlocking)
                .with_ring(RingConfig::default().with_capacity(cap));
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "capacity {cap}");
        }
    }

    #[test]
    fn bwtree_with_tiny_ring_and_many_threads_matches_reference() {
        // Regression: with a small explicit ring, many threads and the
        // Bw-Tree backend, the eager expiry deletion reads window slots that
        // lag the head by up to max_unindexed + w + ring capacity; the
        // window slack must budget for that (debug builds assert inside
        // `key_of` when it does not).
        let tuples = random_tuples(6000, 400, 96);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        let cfg = config(128, 16, 16, 1.0, MergePolicy::NonBlocking).with_ring(
            RingConfig::default()
                .with_capacity(64)
                .with_backoff(2, 4, 10),
        );
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::BwTree, false)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
    }

    /// The shard counts the sharded differential tests sweep. CI's shard
    /// matrix pins a single count via `PIMTREE_TEST_SHARDS`; local runs sweep
    /// the interesting shapes (off, even split, more shards than threads).
    fn shard_sweep() -> Vec<usize> {
        match std::env::var("PIMTREE_TEST_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(n) => vec![n],
            None => vec![1, 2, 4],
        }
    }

    /// The interleave widths the AMAC differential tests sweep. CI's
    /// interleave leg pins a single ring width via `PIMTREE_TEST_INTERLEAVE`;
    /// local runs sweep a narrow and a deep ring.
    fn interleave_sweep() -> Vec<usize> {
        match std::env::var("PIMTREE_TEST_INTERLEAVE")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(n) => vec![n],
            None => vec![2, 8],
        }
    }

    /// AMAC differential: the interleaved descent ring must produce the
    /// exact same result set as the batched group probe, the scalar probe
    /// and the brute-force oracle, under both merge policies and both
    /// shared-index backends.
    #[test]
    fn interleaved_probe_matches_batched_scalar_and_reference() {
        let tuples = random_tuples(5000, 400, 116);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
                for k in interleave_sweep() {
                    let cfg = config(128, 4, 4, 0.5, policy)
                        .with_probe(ProbeConfig::default().with_interleave(k));
                    let op =
                        ParallelIbwj::new(cfg, predicate, kind, false).with_collected_results(true);
                    let (stats, results) = op.run(&tuples);
                    let label = format!("{policy:?}/{kind:?}/K={k}");
                    assert_eq!(canonical(&results), expected, "{label}");
                    if kind == SharedIndexKind::PimTree && k >= 2 {
                        assert!(stats.probe.interleaved_batches > 0, "{label}");
                        assert!(
                            stats.probe.interleaved_descents >= stats.probe.interleaved_batches,
                            "{label}"
                        );
                        assert!(
                            stats.probe.interleave_steps >= stats.probe.interleaved_descents,
                            "{label}"
                        );
                        assert_eq!(stats.probe.scalar_probes, 0, "{label}");
                    } else {
                        // The Bw-Tree backend has no batched descent at all;
                        // an interleave-off run uses the batched group probe.
                        assert_eq!(stats.probe.interleaved_batches, 0, "{label}");
                        assert_eq!(stats.probe.interleave_steps, 0, "{label}");
                    }
                }
            }
        }
    }

    /// AMAC differential across shard counts and both store modes: the
    /// interleaved ring must survive sub-range splitting (partitioned
    /// stores probe per-shard segments) without changing a single result.
    #[test]
    fn interleaved_probe_sharded_both_store_modes_matches_reference() {
        let tuples = self_join_tuples(4000, 250, 117);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for shards in shard_sweep() {
            for partition_index in [false, true] {
                for k in interleave_sweep() {
                    let cfg = config(128, 6, 2, 0.5, MergePolicy::NonBlocking)
                        .with_probe(ProbeConfig::default().with_interleave(k))
                        .with_shard(
                            ShardConfig::default()
                                .with_shards(shards)
                                .with_partition_index(partition_index),
                        );
                    let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, true)
                        .with_collected_results(true);
                    let (stats, results) = op.run(&tuples);
                    let label = format!("shards {shards}, partitioned {partition_index}, K={k}");
                    assert_eq!(canonical(&results), expected, "{label}");
                    if k >= 2 {
                        assert!(stats.probe.interleaved_batches > 0, "{label}");
                    }
                }
            }
        }
    }

    /// The tentpole differential: the sharded engine must produce the exact
    /// same results as the single-ring engine and the brute-force oracle,
    /// across shard counts, merge policies and index backends, and its
    /// claim accounting must cover every tuple.
    #[test]
    fn sharded_engine_matches_single_ring_and_reference() {
        let tuples = random_tuples(5000, 400, 101);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
                for shards in shard_sweep() {
                    let cfg = config(128, 4, 4, 0.5, policy)
                        .with_shard(ShardConfig::default().with_shards(shards));
                    let op =
                        ParallelIbwj::new(cfg, predicate, kind, false).with_collected_results(true);
                    // Under the repartition sweep this arm also exercises the
                    // round-robin → key-range router upgrade mid-run.
                    let op = with_env_repartition(op, &tuples, shards);
                    let (stats, results) = op.run(&tuples);
                    let label = format!("{policy:?}/{kind:?}/{shards} shards");
                    assert_eq!(canonical(&results), expected, "{label}");
                    assert_eq!(stats.ring.tuples_acquired, 5000, "{label}");
                    assert_eq!(stats.ring.slots_drained, 5000, "{label}");
                    assert_eq!(stats.shard.shards, shards as u64, "{label}");
                    assert_eq!(
                        stats.shard.local_tuples + stats.shard.stolen_tuples,
                        5000,
                        "every tuple claimed home or stolen ({label})"
                    );
                    assert_eq!(
                        stats.shard.local_accesses + stats.shard.remote_accesses,
                        5000,
                        "every claim charged to the traffic account ({label})"
                    );
                    if shards == 1 {
                        assert_eq!(stats.shard.stolen_tuples, 0, "{label}");
                        assert_eq!(stats.shard.remote_accesses, 0, "{label}");
                        assert_eq!(stats.shard.shard_full_stalls, 0, "{label}");
                    }
                }
            }
        }
    }

    /// Key-range routing through a real `RangePartitioner`: results are
    /// identical and the traffic account stays consistent.
    #[test]
    fn sharded_engine_with_range_partitioner_matches_reference() {
        let tuples = random_tuples(5000, 600, 102);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();
        for shards in shard_sweep() {
            let partitioner = RangePartitioner::from_key_sample(shards, &sample);
            let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
                .with_shard(ShardConfig::default().with_shards(shards));
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                .with_partitioner(partitioner)
                .with_collected_results(true);
            let (stats, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "{shards} shards");
            assert_eq!(
                stats.shard.local_accesses + stats.shard.remote_accesses,
                5000,
                "{shards} shards"
            );
            assert!(
                stats.shard.simulated_numa_cost >= 5000 * 90,
                "{shards} shards"
            );
        }
    }

    /// Duplicate-heavy keys and domain-overflowing probe ranges under
    /// sharding, with a window that never expires and one that expires
    /// immediately.
    #[test]
    fn sharded_engine_duplicate_keys_and_window_edges() {
        let predicate = BandPredicate::new(100);
        let tuples = random_tuples(2000, 50, 103);
        for shards in shard_sweep() {
            for w in [1usize, 4096] {
                let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
                let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();
                let cfg = config(w, 3, 4, 1.0, MergePolicy::NonBlocking)
                    .with_shard(ShardConfig::default().with_shards(shards));
                let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                    .with_partitioner(RangePartitioner::from_key_sample(shards, &sample))
                    .with_collected_results(true);
                let (_, results) = op.run(&tuples);
                assert_eq!(canonical(&results), expected, "shards {shards}, w {w}");
            }
        }
    }

    /// Sharded self-join with tiny per-shard rings: every slot is recycled
    /// many times and the cross-shard merge cursor interleaves constantly.
    #[test]
    fn sharded_engine_self_join_tiny_rings() {
        let tuples = self_join_tuples(4000, 250, 104);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for shards in shard_sweep() {
            let cfg = config(128, 6, 2, 0.5, MergePolicy::NonBlocking)
                .with_ring(
                    RingConfig::default()
                        .with_capacity(64)
                        .with_backoff(2, 4, 10),
                )
                .with_shard(
                    ShardConfig::default()
                        .with_shards(shards)
                        .with_steal_batch(1),
                );
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, true)
                .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "shards {shards}");
        }
    }

    /// Steals must never break the ordering contract: the propagated result
    /// stream follows the probing tuples' global arrival order even when a
    /// skewed partitioner forces most claims to be steals.
    #[test]
    fn sharded_steals_preserve_arrival_order() {
        let tuples = random_tuples(3000, 200, 105);
        let predicate = BandPredicate::new(2);
        for shards in shard_sweep() {
            // An empty-sample partitioner routes every key to shard 0, so
            // with several shards the workers homed elsewhere can only steal.
            let partitioner = RangePartitioner::from_key_sample(shards, &[]);
            let cfg = config(128, 6, 2, 1.0, MergePolicy::NonBlocking).with_shard(
                ShardConfig::default()
                    .with_shards(shards)
                    .with_steal_batch(2),
            );
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                .with_partitioner(partitioner)
                .with_collected_results(true);
            let (stats, results) = op.run(&tuples);
            assert!(!results.is_empty());
            let mut pos_of = std::collections::HashMap::new();
            for (i, t) in tuples.iter().enumerate() {
                pos_of.insert((t.side, t.seq), i);
            }
            let positions: Vec<usize> = results
                .iter()
                .map(|r| pos_of[&(r.probe.side, r.probe.seq)])
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] <= w[1]),
                "steals must not reorder result propagation ({shards} shards)"
            );
            assert_eq!(
                stats.shard.local_tuples + stats.shard.stolen_tuples,
                3000,
                "{shards} shards"
            );
        }
    }

    /// Whether the partitioned-store differential tests run with the store
    /// on, off, or both. CI's shard matrix pins it via
    /// `PIMTREE_TEST_PARTITION_INDEX`; local runs sweep both arms.
    fn partition_sweep() -> Vec<bool> {
        match std::env::var("PIMTREE_TEST_PARTITION_INDEX")
            .ok()
            .as_deref()
        {
            Some("on") | Some("true") | Some("1") => vec![true],
            Some("off") | Some("false") | Some("0") => vec![false],
            _ => vec![false, true],
        }
    }

    /// Whether the differential tests additionally force a mid-run
    /// repartition epoch. CI's repartition legs pin it via
    /// `PIMTREE_TEST_REPARTITION`; the dedicated repartition tests below run
    /// the epoch protocol unconditionally.
    fn repartition_forced() -> bool {
        matches!(
            std::env::var("PIMTREE_TEST_REPARTITION").ok().as_deref(),
            Some("on") | Some("true") | Some("1")
        )
    }

    /// Which migration mode the env-gated differential sweeps force.
    /// CI's incremental legs pin `PIMTREE_TEST_MIGRATION=incremental`; the
    /// default keeps the wholesale epoch protocol.
    fn env_migration_mode() -> MigrationMode {
        match std::env::var("PIMTREE_TEST_MIGRATION").ok().as_deref() {
            Some("incremental") => MigrationMode::Incremental,
            _ => MigrationMode::Epoch,
        }
    }

    /// Under `PIMTREE_TEST_REPARTITION=on`, arms `op` with a forced
    /// migration epoch at the stream midpoint, adopting a partitioner
    /// rebalanced for the second half of the input (applied through the
    /// `PIMTREE_TEST_MIGRATION` protocol — one wholesale epoch or an
    /// incremental handoff).
    fn with_env_repartition(op: ParallelIbwj, tuples: &[Tuple], shards: usize) -> ParallelIbwj {
        if !repartition_forced() {
            return op;
        }
        let at = tuples.len() / 2;
        let sample: Vec<Key> = tuples[at..].iter().map(|t| t.key).collect();
        op.with_forced_repartition(at, RangePartitioner::from_key_sample(shards, &sample))
            .with_migration_mode(env_migration_mode())
    }

    /// The tentpole differential: with the per-shard index/window store the
    /// engine must produce the exact same results as the shared-store engine
    /// and the brute-force oracle, across shard counts, merge policies and
    /// index backends, and its insert/probe routing must account for every
    /// tuple.
    #[test]
    fn partitioned_store_matches_shared_store_and_reference() {
        let tuples = random_tuples(5000, 400, 111);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
                for shards in shard_sweep() {
                    for partition in partition_sweep() {
                        let cfg = config(128, 4, 4, 0.5, policy).with_shard(
                            ShardConfig::default()
                                .with_shards(shards)
                                .with_partition_index(partition),
                        );
                        let op = ParallelIbwj::new(cfg, predicate, kind, false)
                            .with_collected_results(true);
                        let op = with_env_repartition(op, &tuples, shards);
                        let (stats, results) = op.run(&tuples);
                        let label =
                            format!("{policy:?}/{kind:?}/{shards} shards/partition={partition}");
                        assert_eq!(canonical(&results), expected, "{label}");
                        assert_eq!(stats.ring.tuples_acquired, 5000, "{label}");
                        assert_eq!(stats.ring.slots_drained, 5000, "{label}");
                        if kind == SharedIndexKind::PimTree {
                            // Per-shard trees are provisioned for their key
                            // slice, so merges fire at the same cadence as
                            // the shared engine (regression: a global-window
                            // threshold left partitioned shards merge-less).
                            assert!(stats.merges > 0, "{label}");
                        }
                        if partition && shards > 1 {
                            assert_eq!(stats.store.partitioned, 1, "{label}");
                            assert_eq!(stats.store.store_shards, shards as u64, "{label}");
                            assert_eq!(
                                stats.store.local_inserts + stats.store.remote_inserts,
                                5000,
                                "every tuple routed to exactly one store shard ({label})"
                            );
                            assert_eq!(
                                stats.store.probes, 5000,
                                "every tuple's probe routed through the fan-out query ({label})"
                            );
                            assert!(
                                stats.store.probe_shard_visits >= stats.store.probes,
                                "{label}"
                            );
                            assert!(stats.store.max_probe_fanout <= shards as u64, "{label}");
                            assert!(stats.store.simulated_store_cost > 0, "{label}");
                        } else {
                            // Shared store (partitioning off, or one shard):
                            // the store counters must stay untouched.
                            assert_eq!(stats.store, Default::default(), "{label}");
                        }
                    }
                }
            }
        }
    }

    /// The tentpole invariant: with `--partition-index on`, each shard's
    /// index and window hold only tuples inside its key range (inspected via
    /// per-shard footprints), and probe fan-out visits only the shards whose
    /// ranges overlap the band-join range.
    #[test]
    fn partitioned_store_shards_hold_only_their_key_range() {
        let tuples = random_tuples(4000, 800, 112);
        // A band of ±2 over an 800-key domain split 4 ways: most probes must
        // stay on a single shard.
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking).with_shard(
            ShardConfig::default()
                .with_shards(4)
                .with_partition_index(true),
        );
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
            assert!(store.is_partitioned());
            assert_eq!(store.shards(), 4);
            let partitioner = store.partitioner().expect("partitioned store").clone();
            let footprints = store.shard_footprints();
            assert_eq!(footprints.len(), 4);
            let mut window_total = 0;
            let mut index_total = 0;
            for fp in &footprints {
                for side in &fp.sides {
                    window_total += side.window_live;
                    index_total += side.index_entries;
                    // node_of is monotone in the key, so span containment
                    // proves every key of the shard lies in its range.
                    if let Some((lo, hi)) = side.window_key_span {
                        assert_eq!(partitioner.node_of(lo), fp.shard, "window lo");
                        assert_eq!(partitioner.node_of(hi), fp.shard, "window hi");
                    }
                    if let Some((lo, hi)) = side.index_key_span {
                        assert_eq!(partitioner.node_of(lo), fp.shard, "index lo");
                        assert_eq!(partitioner.node_of(hi), fp.shard, "index hi");
                    }
                }
            }
            assert_eq!(window_total, 128 + 128, "both live windows, sharded");
            assert!(index_total > 0);
        });
        assert_eq!(canonical(&results), expected);
        // Fan-out: a ±2 band over ~200 keys per shard overwhelmingly stays on
        // one shard; visiting every shard for every probe would be 4x.
        assert!(stats.store.single_shard_probes > 0);
        assert!(
            stats.store.probe_shard_visits < stats.store.probes * 2,
            "narrow-band probes must not fan out broadly: {} visits / {} probes",
            stats.store.probe_shard_visits,
            stats.store.probes
        );
        assert!(stats.store.max_probe_fanout <= 2);
    }

    /// Duplicate-heavy keys and domain-overflowing probe ranges under the
    /// partitioned store, with a window that never expires and one that
    /// expires immediately. Domain-overflowing ranges force full fan-out.
    #[test]
    fn partitioned_store_duplicate_keys_and_window_edges() {
        let predicate = BandPredicate::new(100);
        let tuples = random_tuples(2000, 50, 113);
        for shards in shard_sweep() {
            for w in [1usize, 4096] {
                let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
                let cfg = config(w, 3, 4, 1.0, MergePolicy::NonBlocking).with_shard(
                    ShardConfig::default()
                        .with_shards(shards)
                        .with_partition_index(true),
                );
                let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                    .with_collected_results(true);
                let (stats, results) = op.run(&tuples);
                assert_eq!(canonical(&results), expected, "shards {shards}, w {w}");
                if shards > 1 {
                    // A ±100 band over a 50-key domain overlaps every shard.
                    assert_eq!(
                        stats.store.probe_shard_visits,
                        stats.store.probes * shards as u64,
                        "domain-covering ranges fan out to every shard"
                    );
                }
            }
        }
    }

    /// Partitioned-store self-join through both probe paths (batched and
    /// scalar), with tiny per-shard rings.
    #[test]
    fn partitioned_store_self_join_both_probe_paths() {
        let tuples = self_join_tuples(4000, 250, 114);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for shards in shard_sweep() {
            for probe in [
                ProbeConfig::default(),
                ProbeConfig::default().with_interleave(8),
                ProbeConfig::scalar(),
                ProbeConfig::scalar().with_interleave(8),
            ] {
                let cfg = config(128, 6, 2, 0.5, MergePolicy::NonBlocking)
                    .with_probe(probe)
                    .with_ring(
                        RingConfig::default()
                            .with_capacity(64)
                            .with_backoff(2, 4, 10),
                    )
                    .with_shard(
                        ShardConfig::default()
                            .with_shards(shards)
                            .with_partition_index(true),
                    );
                let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, true)
                    .with_collected_results(true);
                let (_, results) = op.run(&tuples);
                assert_eq!(
                    canonical(&results),
                    expected,
                    "shards {shards}, probe {probe:?}"
                );
            }
        }
    }

    /// A skewed partitioner under the partitioned store: every key routes to
    /// shard 0, so all index/window state lives there and all claims by
    /// workers homed elsewhere are steals — results must still be exact and
    /// in arrival order.
    #[test]
    fn partitioned_store_with_skewed_partitioner_matches_reference() {
        let tuples = random_tuples(3000, 200, 115);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        for shards in shard_sweep() {
            if shards == 1 {
                continue;
            }
            let partitioner = RangePartitioner::from_key_sample(shards, &[]);
            let cfg = config(128, 4, 2, 1.0, MergePolicy::NonBlocking).with_shard(
                ShardConfig::default()
                    .with_shards(shards)
                    .with_partition_index(true),
            );
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                .with_partitioner(partitioner)
                .with_collected_results(true);
            let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
                for fp in store.shard_footprints() {
                    if fp.shard == 0 {
                        continue;
                    }
                    for side in &fp.sides {
                        assert_eq!(side.window_live, 0, "shard {} window", fp.shard);
                        assert_eq!(side.index_entries, 0, "shard {} index", fp.shard);
                    }
                }
            });
            assert_eq!(canonical(&results), expected, "{shards} shards");
            assert_eq!(
                stats.store.probe_shard_visits, stats.store.probes,
                "all probes land on the single populated shard"
            );
        }
    }

    /// Warmup runs under the partitioned store keep the result stream
    /// identical and exclude the warmup prefix from the store counters.
    #[test]
    fn partitioned_store_warmup_produces_identical_results() {
        let tuples = random_tuples(4000, 400, 116);
        let predicate = BandPredicate::new(2);
        let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking).with_shard(
            ShardConfig::default()
                .with_shards(2)
                .with_partition_index(true),
        );
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (full_stats, full_results) = op.run(&tuples);
        let (warm_stats, warm_results) = op.run_with_warmup(&tuples, 1000);
        assert_eq!(canonical(&warm_results), canonical(&full_results));
        assert_eq!(warm_stats.tuples, full_stats.tuples - 1000);
        assert_eq!(
            warm_stats.store.local_inserts + warm_stats.store.remote_inserts,
            3000,
            "warmup inserts are excluded from the measured counters"
        );
        assert!(warm_stats.store.simulated_store_cost < full_stats.store.simulated_store_cost);
    }

    /// A drifting-skew workload: the first half draws keys from one range,
    /// the second half from a disjoint range, so a partitioner fitted to the
    /// prefix becomes maximally imbalanced halfway through.
    fn drifting_tuples(n: usize, domain: i64, shift: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64, 0u64];
        (0..n)
            .map(|i| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                let base = rng.gen_range(0..domain);
                let key = if i < n / 2 { base } else { base + shift };
                Tuple::new(side, seq, key)
            })
            .collect()
    }

    /// The tentpole acceptance test: under a drifting-skew workload with
    /// `--repartition on`, the engine adopts at least one repartition plan
    /// mid-run (quiesce → swap → migrate → resume), the migrated-tuple and
    /// stall counters fill in, the result stream stays byte-identical to the
    /// shared-store oracle — and adoption does not oscillate. With the flag
    /// off, behavior and counters are exactly the PR 4 engine's.
    #[test]
    fn drifting_workload_adopts_a_repartition_plan_mid_run() {
        let tuples = drifting_tuples(8000, 400, 10_000, 121);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for shards in [2usize, 4] {
            // The initial partitioner fits the first half only, so the
            // second half's disjoint key range drifts it out of balance.
            let first: Vec<Key> = tuples[..tuples.len() / 2].iter().map(|t| t.key).collect();
            let partitioner = RangePartitioner::from_key_sample(shards, &first);
            let shard_cfg = ShardConfig::default()
                .with_shards(shards)
                .with_partition_index(true);
            let drift = pimtree_common::DriftConfig::default()
                .with_repartition(true)
                .with_window(512)
                .with_imbalance_trigger(1.5);
            let on = ParallelIbwj::new(
                config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
                    .with_shard(shard_cfg)
                    .with_drift(drift),
                predicate,
                SharedIndexKind::PimTree,
                false,
            )
            .with_partitioner(partitioner.clone())
            .with_collected_results(true);
            let (stats, results) = on.run(&tuples);
            assert_eq!(canonical(&results), expected, "{shards} shards");
            assert_eq!(stats.migration.enabled, 1, "{shards} shards");
            assert!(
                stats.migration.epochs >= 1,
                "the drifted load must adopt a plan ({shards} shards)"
            );
            // While the drift monitor's window still mixes pre- and
            // post-drift keys, a couple of corrective epochs are legitimate;
            // without the clear-and-cooldown fix every post-adoption check
            // (each `window / 8` observations) would re-trigger against the
            // stale sample — dozens of epochs over this tail.
            assert!(
                stats.migration.epochs <= 8,
                "adoption must not oscillate: {} epochs ({shards} shards)",
                stats.migration.epochs
            );
            assert!(stats.migration.observations > 0, "{shards} shards");
            assert!(
                stats.migration.window_tuples_moved > 0,
                "a full key-range shift must migrate window tuples ({shards} shards)"
            );
            assert!(stats.migration.index_entries_moved > 0, "{shards} shards");
            assert!(stats.migration.simulated_move_cost > 0, "{shards} shards");
            assert!(stats.migration.stall_nanos > 0, "{shards} shards");
            // Flag off: identical results, untouched counters — the PR 4
            // engine bit for bit.
            let off = ParallelIbwj::new(
                config(128, 4, 4, 0.5, MergePolicy::NonBlocking).with_shard(shard_cfg),
                predicate,
                SharedIndexKind::PimTree,
                false,
            )
            .with_partitioner(partitioner)
            .with_collected_results(true);
            let (off_stats, off_results) = off.run(&tuples);
            assert_eq!(canonical(&off_results), expected, "{shards} shards");
            assert_eq!(
                off_stats.migration,
                Default::default(),
                "repartition off must leave the migration counters untouched"
            );
        }
    }

    /// A forced epoch adopting the worst-case partitioner (everything to
    /// shard 0) mid-run: the migration collapses every shard's index and
    /// window state onto one shard while the ring drains tuples routed under
    /// the old policy — across both backends and merge policies, the results
    /// must stay exact and post-migration state must respect the new
    /// ownership.
    #[test]
    fn forced_skewed_repartition_epoch_preserves_results() {
        let tuples = random_tuples(4000, 400, 122);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
                let skewed = RangePartitioner::from_key_sample(4, &[]);
                let cfg = config(128, 4, 4, 0.5, policy).with_shard(
                    ShardConfig::default()
                        .with_shards(4)
                        .with_partition_index(true),
                );
                let op = ParallelIbwj::new(cfg, predicate, kind, false)
                    .with_forced_repartition(tuples.len() / 2, skewed)
                    .with_collected_results(true);
                let label = format!("{policy:?}/{kind:?}");
                let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
                    // Post-migration ownership: all state on shard 0.
                    for fp in store.shard_footprints() {
                        if fp.shard == 0 {
                            continue;
                        }
                        for side in &fp.sides {
                            assert_eq!(side.window_live, 0, "shard {}", fp.shard);
                            assert_eq!(side.index_entries, 0, "shard {}", fp.shard);
                        }
                    }
                    assert_eq!(store.epoch(), 1);
                });
                assert_eq!(canonical(&results), expected, "{label}");
                assert_eq!(stats.migration.enabled, 1, "{label}");
                assert_eq!(stats.migration.epochs, 1, "{label}");
                assert!(
                    stats.migration.window_tuples_moved > 0,
                    "collapsing 4 shards onto one must move window tuples ({label})"
                );
                assert!(stats.migration.stall_nanos > 0, "{label}");
            }
        }
    }

    /// Drift monitoring and a forced epoch armed together: the forced
    /// adoption drops any drift plan staged against the pre-forced
    /// partitioner (regression: the stale plan used to survive the forced
    /// epoch and migrate the freshly adopted state right back), results
    /// stay exact, and the combined path neither livelocks nor oscillates.
    #[test]
    fn forced_epoch_with_drift_armed_stays_exact() {
        let tuples = drifting_tuples(6000, 400, 10_000, 124);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        let first: Vec<Key> = tuples[..tuples.len() / 2].iter().map(|t| t.key).collect();
        let drift = pimtree_common::DriftConfig::default()
            .with_repartition(true)
            .with_window(512)
            .with_imbalance_trigger(1.5);
        let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
            .with_shard(
                ShardConfig::default()
                    .with_shards(2)
                    .with_partition_index(true),
            )
            .with_drift(drift);
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_partitioner(RangePartitioner::from_key_sample(2, &first))
            .with_forced_repartition(
                3 * tuples.len() / 4,
                RangePartitioner::from_key_sample(2, &[]),
            )
            .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert!(stats.migration.epochs >= 1, "the forced epoch must fire");
        assert!(
            stats.migration.epochs <= 8,
            "stale drift plans must not replay after the forced adoption: {} epochs",
            stats.migration.epochs
        );
    }

    /// The tentpole differential: a drift-adopted plan applied through the
    /// incremental handoff protocol (small per-step budget, so the handoff
    /// spans many bounded quiesces) produces results byte-identical to the
    /// wholesale epoch protocol and the shared-store oracle, completes at
    /// least one full handoff, and its worst single stall never exceeds the
    /// cumulative stall (sanity of the max/total split).
    #[test]
    fn incremental_handoff_matches_epoch_and_oracle() {
        let tuples = drifting_tuples(8000, 400, 10_000, 125);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for shards in [2usize, 4] {
            let first: Vec<Key> = tuples[..tuples.len() / 2].iter().map(|t| t.key).collect();
            let partitioner = RangePartitioner::from_key_sample(shards, &first);
            let shard_cfg = ShardConfig::default()
                .with_shards(shards)
                .with_partition_index(true);
            let drift = pimtree_common::DriftConfig::default()
                .with_repartition(true)
                .with_window(512)
                .with_imbalance_trigger(1.5)
                .with_migration_mode(MigrationMode::Incremental)
                .with_handoff_budget(64);
            let op = ParallelIbwj::new(
                config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
                    .with_shard(shard_cfg)
                    .with_drift(drift),
                predicate,
                SharedIndexKind::PimTree,
                false,
            )
            .with_partitioner(partitioner)
            .with_collected_results(true);
            let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
                assert!(
                    store.handoff_dual().is_none(),
                    "no sub-range stays dual-owned after the run"
                );
            });
            assert_eq!(canonical(&results), expected, "{shards} shards");
            assert!(
                stats.migration.epochs >= 1,
                "the drifted load must complete a handoff ({shards} shards)"
            );
            assert!(stats.migration.epochs <= 8, "{shards} shards");
            assert!(
                stats.migration.handoff_steps >= 1,
                "a full key-range shift must take budgeted steps ({shards} shards)"
            );
            assert!(stats.migration.window_tuples_moved > 0, "{shards} shards");
            assert!(stats.migration.max_stall_nanos > 0, "{shards} shards");
            assert!(
                stats.migration.max_stall_nanos <= stats.migration.stall_nanos,
                "{shards} shards"
            );
        }
    }

    /// A forced worst-case handoff (collapse 4 shards onto one) through the
    /// incremental protocol, across both backends and merge policies: exact
    /// results, post-handoff state entirely on shard 0, nothing dual-owned,
    /// and the store epoch bumped exactly once at finalization.
    #[test]
    fn forced_incremental_collapse_preserves_results() {
        let tuples = random_tuples(4000, 400, 126);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for policy in [MergePolicy::NonBlocking, MergePolicy::Blocking] {
            for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
                let skewed = RangePartitioner::from_key_sample(4, &[]);
                let cfg = config(128, 4, 4, 0.5, policy)
                    .with_shard(
                        ShardConfig::default()
                            .with_shards(4)
                            .with_partition_index(true),
                    )
                    .with_drift(
                        pimtree_common::DriftConfig::default()
                            .with_migration_mode(MigrationMode::Incremental)
                            .with_handoff_budget(128),
                    );
                let op = ParallelIbwj::new(cfg, predicate, kind, false)
                    .with_forced_repartition(tuples.len() / 2, skewed)
                    .with_collected_results(true);
                let label = format!("{policy:?}/{kind:?}");
                let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
                    assert!(store.handoff_dual().is_none());
                    for fp in store.shard_footprints() {
                        if fp.shard == 0 {
                            continue;
                        }
                        for side in &fp.sides {
                            assert_eq!(side.window_live, 0, "shard {}", fp.shard);
                            assert_eq!(side.index_entries, 0, "shard {}", fp.shard);
                        }
                    }
                    assert_eq!(store.epoch(), 1);
                });
                assert_eq!(canonical(&results), expected, "{label}");
                assert_eq!(stats.migration.epochs, 1, "{label}");
                assert!(stats.migration.handoff_steps >= 1, "{label}");
                assert!(stats.migration.window_tuples_moved > 0, "{label}");
                assert!(stats.migration.max_stall_nanos > 0, "{label}");
            }
        }
    }

    /// A handoff forced so late (and with so small a budget) that the input
    /// ends while sub-ranges are still in flight: the run-end completion
    /// path must resume from the frontier and finish the handoff, leaving
    /// ownership fully swapped and nothing dual-owned.
    #[test]
    fn incremental_handoff_interrupted_by_input_end_completes() {
        let tuples = random_tuples(3000, 300, 127);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
            .with_shard(
                ShardConfig::default()
                    .with_shards(4)
                    .with_partition_index(true),
            )
            .with_drift(
                pimtree_common::DriftConfig::default()
                    .with_migration_mode(MigrationMode::Incremental)
                    .with_handoff_budget(1),
            );
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_forced_repartition(tuples.len() - 50, RangePartitioner::from_key_sample(4, &[]))
            .with_collected_results(true);
        let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
            assert!(store.handoff_dual().is_none());
            for fp in store.shard_footprints() {
                if fp.shard == 0 {
                    continue;
                }
                for side in &fp.sides {
                    assert_eq!(side.window_live, 0, "shard {}", fp.shard);
                    assert_eq!(side.index_entries, 0, "shard {}", fp.shard);
                }
            }
        });
        assert_eq!(canonical(&results), expected);
        assert_eq!(stats.migration.epochs, 1, "completion must finalize");
        assert!(stats.migration.handoff_steps >= 1);
    }

    /// Open-loop pacing: arrival-rate runs report one arrival→drain sample
    /// per measured tuple through the log-bucketed histogram, keep results
    /// exact, and closed-loop runs report no histogram at all.
    #[test]
    fn open_loop_run_records_arrival_latency() {
        let tuples = random_tuples(2000, 300, 128);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        let op = ParallelIbwj::new(
            config(128, 4, 4, 0.5, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (closed_stats, _) = op.run(&tuples);
        assert!(closed_stats.arrival_latency.is_none());
        let paced = op.clone().with_open_loop(400_000.0);
        let (stats, results) = paced.run_with_warmup(&tuples, 500);
        assert_eq!(canonical(&results), expected);
        let hist = stats
            .arrival_latency
            .expect("open-loop run records latency");
        assert_eq!(hist.len(), 1500, "one sample per measured tuple");
        assert!(hist.p99_micros() >= hist.p50_micros());
        assert!(hist.max_micros() >= hist.p999_micros());
    }

    /// Domain-edge keys under the partitioned store: key clusters at
    /// `Key::MIN` and `Key::MAX` put partition boundaries (and probe ranges)
    /// at the integer domain edges, where the per-shard sub-range clipping
    /// must use checked arithmetic instead of wrapping (the `boundary + 1`
    /// satellite bug), including across a forced migration epoch.
    #[test]
    fn partitioned_store_domain_edge_keys_match_reference() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut seqs = [0u64, 0u64];
        let tuples: Vec<Tuple> = (0..3000)
            .map(|i| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                // Two clusters hugging the domain edges.
                let key = if i % 2 == 0 {
                    Key::MIN + rng.gen_range(0i64..200)
                } else {
                    Key::MAX - rng.gen_range(0i64..200)
                };
                Tuple::new(side, seq, key)
            })
            .collect();
        let predicate = BandPredicate::new(100);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for shards in shard_sweep() {
            for forced in [false, true] {
                let cfg = config(128, 4, 4, 1.0, MergePolicy::NonBlocking).with_shard(
                    ShardConfig::default()
                        .with_shards(shards)
                        .with_partition_index(true),
                );
                let mut op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                    .with_collected_results(true);
                if forced {
                    let sample: Vec<Key> =
                        tuples[tuples.len() / 2..].iter().map(|t| t.key).collect();
                    op = op.with_forced_repartition(
                        tuples.len() / 2,
                        RangePartitioner::from_key_sample(shards, &sample),
                    );
                }
                let (_, results) = op.run(&tuples);
                assert_eq!(
                    canonical(&results),
                    expected,
                    "shards {shards}, forced {forced}"
                );
            }
        }
    }

    mod repartition_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// The satellite property: a migration epoch forced at a random
            /// point in the stream — with either a rebalanced or a
            /// maximally skewed target partitioner — yields output identical
            /// to the shared-store oracle across both backends and merge
            /// policies, and no unexpired tuple is dropped by the migration
            /// (the live window census after the run is exactly the
            /// unexpired suffix of each side).
            #[test]
            fn forced_migration_matches_oracle_and_drops_no_live_tuple(
                seed in 0u64..1_000,
                n in 1_000usize..2_500,
                at_pct in 0usize..101,
                shards in 2usize..5,
                blocking in prop::bool::ANY,
                bw in prop::bool::ANY,
                skew in prop::bool::ANY,
            ) {
                let tuples = random_tuples(n, 300, seed);
                let predicate = BandPredicate::new(2);
                let w = 64usize;
                let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
                let at = n * at_pct / 100;
                let forced = if skew {
                    RangePartitioner::from_key_sample(shards, &[])
                } else {
                    let sample: Vec<Key> = tuples[at.min(n - 1)..].iter().map(|t| t.key).collect();
                    RangePartitioner::from_key_sample(shards, &sample)
                };
                let policy = if blocking {
                    MergePolicy::Blocking
                } else {
                    MergePolicy::NonBlocking
                };
                let kind = if bw {
                    SharedIndexKind::BwTree
                } else {
                    SharedIndexKind::PimTree
                };
                let cfg = config(w, 4, 4, 0.5, policy).with_shard(
                    ShardConfig::default()
                        .with_shards(shards)
                        .with_partition_index(true),
                );
                let op = ParallelIbwj::new(cfg, predicate, kind, false)
                    .with_forced_repartition(at, forced)
                    .with_collected_results(true);
                let mut live_census = [0usize; 2];
                let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
                    for fp in store.shard_footprints() {
                        for (side, counts) in fp.sides.iter().zip(live_census.iter_mut()) {
                            *counts += side.window_live;
                        }
                    }
                });
                prop_assert_eq!(canonical(&results), expected);
                prop_assert_eq!(stats.migration.epochs, 1);
                // No unexpired tuple dropped (or duplicated): per side the
                // live census equals the unexpired suffix of the stream.
                let r_count = tuples.iter().filter(|t| t.side == StreamSide::R).count();
                let s_count = tuples.len() - r_count;
                prop_assert_eq!(live_census[0], r_count.min(w), "side R census");
                prop_assert_eq!(live_census[1], s_count.min(w), "side S census");
            }

            /// The incremental counterpart: the same randomly placed forced
            /// migration applied as a budgeted handoff — interrupted and
            /// resumed at every sub-range boundary by design, possibly cut
            /// short by input exhaustion and finished by the run-end
            /// completion path — equals the shared-store oracle across both
            /// backends and merge policies, leaves nothing dual-owned, and
            /// drops/duplicates no unexpired tuple.
            #[test]
            fn incremental_handoff_matches_oracle_and_drops_no_live_tuple(
                seed in 1_000u64..2_000,
                n in 1_000usize..2_500,
                at_pct in 0usize..101,
                shards in 2usize..5,
                budget in 1usize..97,
                blocking in prop::bool::ANY,
                bw in prop::bool::ANY,
                skew in prop::bool::ANY,
            ) {
                let tuples = random_tuples(n, 300, seed);
                let predicate = BandPredicate::new(2);
                let w = 64usize;
                let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
                let at = n * at_pct / 100;
                let forced = if skew {
                    RangePartitioner::from_key_sample(shards, &[])
                } else {
                    let sample: Vec<Key> = tuples[at.min(n - 1)..].iter().map(|t| t.key).collect();
                    RangePartitioner::from_key_sample(shards, &sample)
                };
                let policy = if blocking {
                    MergePolicy::Blocking
                } else {
                    MergePolicy::NonBlocking
                };
                let kind = if bw {
                    SharedIndexKind::BwTree
                } else {
                    SharedIndexKind::PimTree
                };
                let cfg = config(w, 4, 4, 0.5, policy)
                    .with_shard(
                        ShardConfig::default()
                            .with_shards(shards)
                            .with_partition_index(true),
                    )
                    .with_drift(
                        pimtree_common::DriftConfig::default()
                            .with_migration_mode(MigrationMode::Incremental)
                            .with_handoff_budget(budget),
                    );
                let op = ParallelIbwj::new(cfg, predicate, kind, false)
                    .with_forced_repartition(at, forced)
                    .with_collected_results(true);
                let mut live_census = [0usize; 2];
                let mut dual = None;
                let (stats, results) = op.run_with_store_inspector(&tuples, 0, |store| {
                    dual = store.handoff_dual();
                    for fp in store.shard_footprints() {
                        for (side, counts) in fp.sides.iter().zip(live_census.iter_mut()) {
                            *counts += side.window_live;
                        }
                    }
                });
                prop_assert_eq!(canonical(&results), expected);
                prop_assert_eq!(stats.migration.epochs, 1);
                prop_assert!(dual.is_none(), "handoff fully finalized");
                if stats.migration.window_tuples_moved > 0 {
                    prop_assert!(stats.migration.handoff_steps >= 1);
                }
                let r_count = tuples.iter().filter(|t| t.side == StreamSide::R).count();
                let s_count = tuples.len() - r_count;
                prop_assert_eq!(live_census[0], r_count.min(w), "side R census");
                prop_assert_eq!(live_census[1], s_count.min(w), "side S census");
            }
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the shard count")]
    fn sharded_engine_rejects_mismatched_partitioner() {
        let cfg = config(64, 2, 4, 1.0, MergePolicy::NonBlocking)
            .with_shard(ShardConfig::default().with_shards(2));
        let _ = ParallelIbwj::new(cfg, BandPredicate::new(1), SharedIndexKind::PimTree, false)
            .with_partitioner(RangePartitioner::from_key_sample(4, &[1, 2, 3]));
    }

    #[test]
    fn explicit_ring_configuration_is_honoured() {
        // A run with an explicit tiny ring and yield-only back-off still
        // matches the reference (sanity check for the config plumbing).
        let tuples = random_tuples(2000, 200, 94);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 64, false));
        let cfg = config(64, 3, 2, 1.0, MergePolicy::NonBlocking).with_ring(
            RingConfig::default()
                .with_capacity(16)
                .with_ingest_target(4)
                .with_backoff(1, 2, 0),
        );
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert_eq!(stats.ring.idle_parks, 0, "park_micros = 0 never parks");
    }

    /// With the flight recorder in `full` mode, a forced mid-run migration's
    /// stall decomposes into named causes whose sum reproduces the engine's
    /// total migration stall within 1% (exactly, by lap-timer construction) —
    /// under both the wholesale epoch and the incremental handoff protocol —
    /// and the end-of-run report carries per-phase time for every worker.
    #[test]
    fn telemetry_full_attributes_stalls_and_phases() {
        let tuples = drifting_tuples(6000, 400, 10_000, 131);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for mode in [MigrationMode::Epoch, MigrationMode::Incremental] {
            let first: Vec<Key> = tuples[..tuples.len() / 2].iter().map(|t| t.key).collect();
            let cfg = config(128, 4, 4, 0.5, MergePolicy::NonBlocking)
                .with_shard(
                    ShardConfig::default()
                        .with_shards(2)
                        .with_partition_index(true),
                )
                .with_drift(
                    pimtree_common::DriftConfig::default()
                        .with_migration_mode(mode)
                        .with_handoff_budget(64),
                )
                .with_telemetry(
                    pimtree_common::TelemetryConfig::default().with_mode(TelemetryMode::Full),
                );
            let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
                .with_partitioner(RangePartitioner::from_key_sample(2, &first))
                .with_forced_repartition(
                    tuples.len() / 2,
                    RangePartitioner::from_key_sample(2, &[]),
                )
                .with_collected_results(true);
            let (stats, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "{mode:?}");
            assert!(stats.migration.epochs >= 1, "{mode:?}");
            assert!(stats.migration.stall_nanos > 0, "{mode:?}");
            let cause_sum = stats.migration.stall_causes.total_nanos();
            let total = stats.migration.stall_nanos;
            assert!(
                (cause_sum as f64 - total as f64).abs() <= total as f64 * 0.01,
                "{mode:?}: causes sum {cause_sum} vs total {total}"
            );
            // Both protocols quiesce through the gate, so the gate causes
            // must carry weight; a migration must attribute state movement.
            assert!(
                stats.migration.stall_cause_nanos(StallCause::GateClose) > 0,
                "{mode:?}"
            );
            if stats.migration.window_tuples_moved > 0 {
                let moved = stats
                    .migration
                    .stall_cause_nanos(StallCause::WindowSnapshot)
                    + stats.migration.stall_cause_nanos(StallCause::Rebuild)
                    + stats.migration.stall_cause_nanos(StallCause::IndexSwap);
                assert!(moved > 0, "{mode:?}: moved state must attribute sub-phases");
            }
            let report = stats
                .telemetry
                .as_ref()
                .expect("full mode fills the report");
            assert_eq!(report.mode, TelemetryMode::Full);
            assert_eq!(report.per_worker.len(), 4);
            assert_eq!(report.stall.total_nanos(), total, "{mode:?}");
            for phase in [EnginePhase::Claim, EnginePhase::Probe, EnginePhase::Expiry] {
                assert!(report.totals.nanos(phase) > 0, "{mode:?} {phase:?}");
            }
            assert!(
                report.phase_histograms.is_some() && report.stall_histograms.is_some(),
                "{mode:?}: full mode records histograms"
            );
            assert!(report.to_prometheus().contains("pimtree_phase_nanos"));
        }
    }

    /// The default (off) mode leaves the report unset and the results exact —
    /// the recorder's hot path is a single relaxed counter bump.
    #[test]
    fn telemetry_off_leaves_report_unset() {
        let tuples = random_tuples(3000, 300, 132);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 64, false));
        let cfg = config(64, 2, 4, 1.0, MergePolicy::NonBlocking);
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert!(stats.telemetry.is_none(), "off mode reports nothing");
    }

    /// `with_telemetry_out` streams gauge samples as JSONL during the
    /// measured phase and leaves a Prometheus-style dump at drain: every
    /// line is one flat JSON object with the schema's required keys and a
    /// strictly increasing `seq`.
    #[test]
    fn telemetry_out_writes_jsonl_trace_and_prometheus_dump() {
        let tuples = random_tuples(4000, 300, 133);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 64, false));
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!(
                "pimtree_telemetry_test_{}.jsonl",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned();
        let cfg = config(64, 2, 4, 1.0, MergePolicy::NonBlocking).with_telemetry(
            pimtree_common::TelemetryConfig::default()
                .with_mode(TelemetryMode::Counters)
                .with_sample_interval_ms(1),
        );
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_telemetry_out(&path)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        let trace = std::fs::read_to_string(&path).expect("trace written");
        let mut last_seq = None;
        let mut lines = 0usize;
        for line in trace.lines().filter(|l| !l.trim().is_empty()) {
            lines += 1;
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "flat JSON: {line}"
            );
            for key in [
                "\"seq\":",
                "\"elapsed_us\":",
                "\"in_flight\":",
                "\"shard_occupancy\":",
                "\"unindexed_r\":",
                "\"unindexed_s\":",
                "\"window_r\":",
                "\"window_s\":",
                "\"local_claims\":",
                "\"stolen_claims\":",
                "\"drift_imbalance\":",
                "\"handoff_steps_done\":",
                "\"handoff_steps_total\":",
                "\"events\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
            let seq: u64 = line["{\"seq\": ".len()..]
                .split(',')
                .next()
                .unwrap()
                .trim()
                .parse()
                .expect("numeric seq");
            if let Some(prev) = last_seq {
                assert!(seq > prev, "seq must increase");
            }
            last_seq = Some(seq);
        }
        assert!(lines >= 1, "the sampler takes at least the final sample");
        let prom = std::fs::read_to_string(format!("{path}.prom")).expect("prom dump");
        assert!(
            prom.contains("pimtree_phase_nanos"),
            "prom dump has metrics"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{path}.prom"));
    }
}
