//! The parallel shared-index window join engine (§4 of the paper).
//!
//! Worker threads share both sliding windows and both indexes. Incoming tuples
//! are arranged in a shared work queue in arrival order; each worker
//! repeatedly
//!
//! 1. **acquires a task** (up to `task_size` tuples, recording for each the
//!    boundaries of the opposite window),
//! 2. **generates results** by probing the opposite index for the already
//!    indexed window prefix and linearly scanning the window suffix past the
//!    *edge tuple* (the earliest non-indexed tuple),
//! 3. **updates the index** with its tuples and tries to advance the edge, and
//! 4. **propagates results** of completed head-of-queue tuples in arrival
//!    order, guarded by a try-lock so at most one thread drains at a time.
//!
//! Index maintenance (the PIM-Tree merge) is coordinated by whichever worker
//! notices that the merge threshold has been reached: the two-phase
//! *non-blocking merge* of §4.2 lets the other workers keep joining (without
//! index updates) while the new `TS` is being built, whereas the blocking
//! variant (kept for the Figure 13c ablation) stalls all workers for the
//! duration of the merge.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pimtree_btree::Entry;
use pimtree_bwtree::BwTreeIndex;
use pimtree_common::{
    BandPredicate, JoinConfig, JoinResult, Key, KeyRange, LatencyRecorder, MergePolicy, Seq,
    StreamSide, Tuple,
};
use pimtree_core::PimTree;
use pimtree_window::{SlidingWindow, WindowBounds};

use crate::stats::JoinRunStats;

/// Which shared index the parallel engine maintains over each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedIndexKind {
    /// The PIM-Tree with the configured merge policy.
    PimTree,
    /// The Bw-Tree-style general-purpose concurrent index (no merges; expired
    /// tuples are deleted eagerly with a small lag).
    BwTree,
}

enum SharedIndex {
    Pim(PimTree),
    Bw(BwTreeIndex),
}

impl SharedIndex {
    fn insert_batch(&self, entries: &[(Key, Seq)]) {
        match self {
            SharedIndex::Pim(t) => t.insert_batch(entries),
            SharedIndex::Bw(t) => {
                for &(key, seq) in entries {
                    t.insert(key, seq);
                }
            }
        }
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        match self {
            SharedIndex::Pim(t) => t.range_for_each(range, f),
            SharedIndex::Bw(t) => t.range_for_each(range, f),
        }
    }

    fn needs_merge(&self) -> bool {
        match self {
            SharedIndex::Pim(t) => t.needs_merge(),
            SharedIndex::Bw(_) => false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Available,
    Active,
    Completed,
}

struct Slot {
    tuple: Tuple,
    /// Boundaries of the opposite window at this tuple's arrival.
    bounds: WindowBounds,
    state: SlotState,
    /// Number of matches produced for this tuple (always maintained).
    result_count: u64,
    /// The matches themselves; only populated when result collection is
    /// enabled (tests), so the common benchmarking path never allocates here.
    results: Vec<JoinResult>,
}

struct WorkQueue {
    entries: std::collections::VecDeque<Slot>,
    /// Global id of `entries[0]`.
    base: u64,
    /// Next input position to ingest.
    next_ingest: usize,
    /// Global id of the next not-yet-acquired slot.
    next_avail: u64,
}

impl WorkQueue {
    fn available(&self) -> usize {
        (self.base + self.entries.len() as u64 - self.next_avail) as usize
    }

    fn slot_mut(&mut self, gid: u64) -> &mut Slot {
        let idx = (gid - self.base) as usize;
        &mut self.entries[idx]
    }
}

struct Shared<'a> {
    input: &'a [Tuple],
    /// Exclusive upper bound on the input positions this batch may ingest.
    /// The warmup phase of a measured run processes a prefix of the input
    /// under the same engine state, then the limit is raised to the full
    /// length for the measured phase.
    ingest_limit: usize,
    predicate: BandPredicate,
    task_size: usize,
    queue_cap: usize,
    /// How many available (not yet acquired) tuples an acquiring worker tries
    /// to keep in the queue: ingesting in bulk keeps every worker supplied
    /// without re-contending on the queue mutex for every task.
    ingest_target: usize,
    /// Upper bound on the non-indexed window suffix (head minus edge tuple)
    /// admitted per side. Without a bound, the tuples processed while a merge
    /// defers index updates pile up un-indexed and every probe's linear scan
    /// grows with them — quadratic work that flattens multithreaded scaling
    /// and blows up latency. Ingestion stalls briefly once the bound is hit;
    /// the backlog drains as soon as the merge finishes replaying its pending
    /// updates.
    max_unindexed: usize,
    self_join: bool,
    window_sizes: [usize; 2],
    windows: [SlidingWindow; 2],
    indexes: [SharedIndex; 2],
    deletion_lag: u64,
    merge_policy: MergePolicy,
    collect_results: bool,

    queue: Mutex<WorkQueue>,
    /// Blocks new task acquisition while a merge phase transition is pending.
    gate: AtomicBool,
    /// Number of tasks currently being processed (acquired, not yet done with
    /// their index updates).
    in_flight: AtomicUsize,
    /// Set per side while a non-blocking merge is in phase 1: workers buffer
    /// their index updates instead of applying them.
    no_index_updates: [AtomicBool; 2],
    pending: [Mutex<Vec<(Key, Seq)>>; 2],
    merge_claimed: AtomicBool,
    merge_stats: Mutex<(u64, Duration)>,
    sink: Mutex<(u64, Vec<JoinResult>)>,
    worker_stats: Mutex<Vec<JoinRunStats>>,
}

impl<'a> Shared<'a> {
    #[inline]
    fn own_idx(&self, side: StreamSide) -> usize {
        if self.self_join {
            0
        } else {
            side.index()
        }
    }

    #[inline]
    fn probe_idx(&self, side: StreamSide) -> usize {
        if self.self_join {
            0
        } else {
            side.opposite().index()
        }
    }

    #[inline]
    fn matched_side(&self, side: StreamSide) -> StreamSide {
        if self.self_join {
            StreamSide::R
        } else {
            side.opposite()
        }
    }
}

/// The parallel index-based window join operator.
#[derive(Debug, Clone)]
pub struct ParallelIbwj {
    config: JoinConfig,
    predicate: BandPredicate,
    kind: SharedIndexKind,
    self_join: bool,
    collect_results: bool,
}

impl ParallelIbwj {
    /// Creates the operator. `config.threads` worker threads are used and
    /// `config.pim` configures the PIM-Tree (including its merge policy).
    pub fn new(
        config: JoinConfig,
        predicate: BandPredicate,
        kind: SharedIndexKind,
        self_join: bool,
    ) -> Self {
        config.validate().expect("invalid join configuration");
        ParallelIbwj {
            config,
            predicate,
            kind,
            self_join,
            collect_results: false,
        }
    }

    /// Collect result tuples (for tests); by default only counts are kept.
    pub fn with_collected_results(mut self, collect: bool) -> Self {
        self.collect_results = collect;
        self
    }

    /// Runs the join over a tuple sequence, returning statistics and (when
    /// enabled) the results in arrival order of the probing tuple.
    pub fn run(&self, tuples: &[Tuple]) -> (JoinRunStats, Vec<JoinResult>) {
        self.run_with_warmup(tuples, 0)
    }

    /// Runs the join over a tuple sequence, excluding the first `warmup`
    /// tuples from the reported statistics.
    ///
    /// The warmup prefix is processed by the same engine state (windows fill
    /// up, the PIM-Tree goes through its first merge and gains its partition
    /// structure), mirroring how the single-threaded operators are measured
    /// after their windows are warm. Timing, throughput and per-phase counters
    /// cover only the remaining tuples; the result stream (when collection is
    /// enabled) still contains every match, including those produced during
    /// warmup, so correctness checks can cover the whole sequence.
    pub fn run_with_warmup(
        &self,
        tuples: &[Tuple],
        warmup: usize,
    ) -> (JoinRunStats, Vec<JoinResult>) {
        let warmup = warmup.min(tuples.len());
        let threads = self.config.threads;
        let task_size = self.config.task_size;
        let queue_cap = (threads * task_size * 64).max(4096);
        let slack = 2 * queue_cap + 1024;

        let window_sizes = if self.self_join {
            [self.config.window_r, 1]
        } else {
            [self.config.window_r, self.config.window_s]
        };
        let make_index = || match self.kind {
            SharedIndexKind::PimTree => {
                let mut pim_cfg = self.config.pim;
                pim_cfg.window_size = self.config.max_window();
                SharedIndex::Pim(PimTree::new(pim_cfg))
            }
            SharedIndexKind::BwTree => SharedIndex::Bw(BwTreeIndex::new()),
        };

        let mut shared = Shared {
            input: tuples,
            ingest_limit: if warmup > 0 { warmup } else { tuples.len() },
            predicate: self.predicate,
            task_size,
            queue_cap,
            self_join: self.self_join,
            window_sizes,
            ingest_target: (threads * task_size).clamp(task_size, queue_cap / 4),
            max_unindexed: (8 * threads * task_size).max(1024),
            windows: [
                SlidingWindow::new(window_sizes[0], slack),
                SlidingWindow::new(window_sizes[1], slack),
            ],
            indexes: [make_index(), make_index()],
            deletion_lag: queue_cap as u64,
            merge_policy: self.config.pim.merge_policy,
            collect_results: self.collect_results,
            queue: Mutex::new(WorkQueue {
                entries: std::collections::VecDeque::new(),
                base: 0,
                next_ingest: 0,
                next_avail: 0,
            }),
            gate: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            no_index_updates: [AtomicBool::new(false), AtomicBool::new(false)],
            pending: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            merge_claimed: AtomicBool::new(false),
            merge_stats: Mutex::new((0, Duration::ZERO)),
            sink: Mutex::new((0, Vec::new())),
            worker_stats: Mutex::new(Vec::new()),
        };

        // Warmup phase: process the prefix with the same engine state, then
        // discard the counters it accumulated (results are kept).
        let mut warmup_results = Vec::new();
        if warmup > 0 {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| worker_loop(&shared));
                }
            });
            shared.worker_stats.lock().clear();
            *shared.merge_stats.lock() = (0, Duration::ZERO);
            let (_, results) = std::mem::take(&mut *shared.sink.lock());
            warmup_results = results;
            shared.ingest_limit = tuples.len();
        }

        let measured = (tuples.len() - warmup) as u64;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| worker_loop(&shared));
            }
        });
        let elapsed = start.elapsed();

        let mut stats = JoinRunStats {
            tuples: measured,
            elapsed,
            ..Default::default()
        };
        for w in shared.worker_stats.lock().iter() {
            stats.absorb(w);
        }
        stats.tuples = measured;
        let (merges, merge_time) = *shared.merge_stats.lock();
        stats.merges = merges;
        stats.merge_time = merge_time;
        let (count, results) = std::mem::take(&mut *shared.sink.lock());
        stats.results = count;
        if self.collect_results {
            warmup_results.extend(results);
            (stats, warmup_results)
        } else {
            (stats, results)
        }
    }
}

// ------------------------------------------------------------------ worker

struct Task {
    items: Vec<(u64, Tuple, WindowBounds)>,
    acquired_at: Instant,
}

/// Buffers reused across tasks by one worker so that the steady-state path
/// performs no heap allocation per tuple.
struct WorkerScratch {
    /// Per-tuple `(slot id, match count, collected matches)` of the current
    /// task; the inner vectors stay empty unless result collection is enabled.
    produced: Vec<(u64, u64, Vec<JoinResult>)>,
    /// Tuples destined for each side's index, inserted as one batch per task.
    inserts: [Vec<(Key, Seq)>; 2],
    /// Sequence numbers to mark as indexed after the batch insert, per side.
    indexed: [Vec<Seq>; 2],
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            produced: Vec::new(),
            inserts: [Vec::new(), Vec::new()],
            indexed: [Vec::new(), Vec::new()],
        }
    }
}

fn worker_loop(shared: &Shared<'_>) {
    let mut local = JoinRunStats::default();
    let mut latency = LatencyRecorder::new();
    let mut scratch = WorkerScratch::new();
    loop {
        maybe_merge(shared, &mut local);
        let acquire_start = Instant::now();
        let acquired = acquire_task(shared);
        local.phase.acquire += acquire_start.elapsed();
        match acquired {
            Some(task) => {
                process_task(shared, &task, &mut scratch, &mut local, &mut latency);
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                let propagate_start = Instant::now();
                propagate(shared);
                local.phase.propagate += propagate_start.elapsed();
            }
            None => {
                let propagate_start = Instant::now();
                propagate(shared);
                local.phase.propagate += propagate_start.elapsed();
                if is_finished(shared) {
                    break;
                }
                // Nothing to do right now (gate closed, queue momentarily
                // empty, or ingestion paused by admission control). Retry the
                // edge advancement — a lost try-lock race must not leave the
                // edge stale with no indexing work left to trigger another
                // attempt — then back off briefly instead of hammering the
                // shared locks that the productive workers need.
                shared.windows[0].try_advance_edge();
                if !shared.self_join {
                    shared.windows[1].try_advance_edge();
                }
                let idle_start = Instant::now();
                std::thread::sleep(Duration::from_micros(20));
                local.phase.idle += idle_start.elapsed();
            }
        }
    }
    local.latency = latency;
    shared.worker_stats.lock().push(local);
}

fn is_finished(shared: &Shared<'_>) -> bool {
    let q = shared.queue.lock();
    q.next_ingest == shared.ingest_limit && q.entries.is_empty()
}

fn acquire_task(shared: &Shared<'_>) -> Option<Task> {
    let mut q = shared.queue.lock();
    if shared.gate.load(Ordering::Acquire) {
        return None;
    }
    // Ingest tuples until enough work is available for every worker (bounded
    // by the queue cap).
    while q.available() < shared.ingest_target
        && q.next_ingest < shared.ingest_limit
        && q.entries.len() < shared.queue_cap
    {
        let t = shared.input[q.next_ingest];
        let own = shared.own_idx(t.side);
        // Admission control: keep the non-indexed suffix of the window this
        // tuple lands in bounded, so linear probe scans stay short even while
        // a merge is deferring index updates.
        let unindexed = shared.windows[own].head() - shared.windows[own].edge();
        if unindexed as usize >= shared.max_unindexed {
            break;
        }
        q.next_ingest += 1;
        let probe = shared.probe_idx(t.side);
        // Bounds of the opposite window at this tuple's arrival (captured
        // before the tuple itself is appended, which matters for self-joins).
        let bounds = shared.windows[probe].bounds();
        let seq = shared.windows[own]
            .append(t.key)
            .expect("sliding window slack exhausted");
        debug_assert_eq!(seq, t.seq, "input sequence numbers must match arrival order");
        q.entries.push_back(Slot {
            tuple: t,
            bounds,
            state: SlotState::Available,
            result_count: 0,
            results: Vec::new(),
        });
    }
    let mut items = Vec::with_capacity(shared.task_size);
    while items.len() < shared.task_size && q.next_avail < q.base + q.entries.len() as u64 {
        let gid = q.next_avail;
        q.next_avail += 1;
        let slot = q.slot_mut(gid);
        debug_assert_eq!(slot.state, SlotState::Available);
        slot.state = SlotState::Active;
        items.push((gid, slot.tuple, slot.bounds));
    }
    if items.is_empty() {
        return None;
    }
    // Count the task as in flight while still holding the queue lock so that a
    // merging thread closing the gate cannot miss it.
    shared.in_flight.fetch_add(1, Ordering::AcqRel);
    drop(q);
    Some(Task {
        items,
        acquired_at: Instant::now(),
    })
}

fn process_task(
    shared: &Shared<'_>,
    task: &Task,
    scratch: &mut WorkerScratch,
    local: &mut JoinRunStats,
    latency: &mut LatencyRecorder,
) {
    let entry_bytes = std::mem::size_of::<Entry>() as u64;
    // Step 2: result generation. Results are buffered locally and published to
    // the shared queue with a single lock acquisition per task, which keeps
    // the queue mutex off the per-tuple critical path.
    let generate_start = Instant::now();
    scratch.produced.clear();
    for &(gid, tuple, bounds) in &task.items {
        let probe = shared.probe_idx(tuple.side);
        let matched_side = shared.matched_side(tuple.side);
        let range = shared.predicate.probe_range(tuple.key);
        // Snapshot of the edge tuple: everything before it is guaranteed to be
        // in the index; everything from it up to the task's window boundary is
        // covered by the linear scan. An outdated snapshot only makes the
        // linear scan longer, never wrong (§4.1).
        let edge = shared.windows[probe].edge().min(bounds.latest_exclusive);
        let mut count = 0u64;
        let mut results = Vec::new();
        let collect = shared.collect_results;
        let search_start = Instant::now();
        shared.indexes[probe].probe(range, &mut |e| {
            if e.seq >= bounds.earliest && e.seq < edge {
                count += 1;
                if collect {
                    results.push(JoinResult::new(tuple, Tuple::new(matched_side, e.seq, e.key)));
                }
            }
        });
        let scan_start = Instant::now();
        local.breakdown.record_nanos(
            pimtree_common::Step::Search,
            (scan_start - search_start).as_nanos() as u64,
        );
        // The linear scan covers the not-yet-indexed suffix, clamped below to
        // the task's earliest live tuple: when the edge lags behind the
        // expiry horizon (e.g. while a merge freezes it), everything before
        // `bounds.earliest` is expired for this probe and must not match.
        let scan_from = edge.max(bounds.earliest);
        let examined =
            shared.windows[probe].scan_linear(scan_from, bounds.latest_exclusive, range, |seq, key| {
                count += 1;
                if collect {
                    results.push(JoinResult::new(tuple, Tuple::new(matched_side, seq, key)));
                }
            });
        local.breakdown.record_nanos(
            pimtree_common::Step::Scan,
            scan_start.elapsed().as_nanos() as u64,
        );
        local.bytes_loaded += (examined as u64 + count + 8) * entry_bytes;
        local.bytes_stored += count * std::mem::size_of::<JoinResult>() as u64;
        local.results += count;
        local.tuples += 1;
        scratch.produced.push((gid, count, results));
    }
    {
        let mut q = shared.queue.lock();
        for (gid, count, results) in scratch.produced.drain(..) {
            let slot = q.slot_mut(gid);
            slot.result_count = count;
            slot.results = results;
            slot.state = SlotState::Completed;
        }
    }
    local.phase.generate += generate_start.elapsed();
    // Latency is the task processing time (§5): acquisition to results ready.
    let task_latency = task.acquired_at.elapsed();
    for _ in 0..task.items.len() {
        latency.record(task_latency);
    }
    // Step 3: index update, batched per side so the generation lock and the
    // shared counters are touched once per task instead of once per tuple.
    let update_start = Instant::now();
    scratch.inserts[0].clear();
    scratch.inserts[1].clear();
    scratch.indexed[0].clear();
    scratch.indexed[1].clear();
    for &(_gid, tuple, _) in &task.items {
        let own = shared.own_idx(tuple.side);
        if shared.no_index_updates[own].load(Ordering::Acquire) {
            shared.pending[own].lock().push((tuple.key, tuple.seq));
        } else {
            scratch.inserts[own].push((tuple.key, tuple.seq));
            scratch.indexed[own].push(tuple.seq);
        }
    }
    for own in 0..2 {
        if scratch.inserts[own].is_empty() {
            continue;
        }
        shared.indexes[own].insert_batch(&scratch.inserts[own]);
        local.bytes_stored += scratch.inserts[own].len() as u64 * entry_bytes;
        if let SharedIndex::Bw(bw) = &shared.indexes[own] {
            // Eager expiry deletion with a lag large enough that no in-flight
            // task can still need the deleted entry.
            let w = shared.window_sizes[own] as u64;
            for &(_, seq) in &scratch.inserts[own] {
                if seq >= w + shared.deletion_lag {
                    let expired_seq = seq - w - shared.deletion_lag;
                    let expired_key = shared.windows[own].key_of(expired_seq);
                    bw.remove(expired_key, expired_seq);
                }
            }
        }
        for &seq in &scratch.indexed[own] {
            shared.windows[own].mark_indexed(seq);
        }
        shared.windows[own].try_advance_edge();
    }
    local.phase.update += update_start.elapsed();
}

fn propagate(shared: &Shared<'_>) {
    // The paper's test-and-set scheme: if another thread is already
    // propagating, skip and go back to useful work.
    let Some(mut sink) = shared.sink.try_lock() else {
        return;
    };
    loop {
        // Drain every consecutive completed head entry under one queue lock
        // acquisition, then emit outside the lock.
        let drained: Vec<Slot> = {
            let mut q = shared.queue.lock();
            let mut drained = Vec::new();
            while matches!(q.entries.front(), Some(front) if front.state == SlotState::Completed) {
                q.base += 1;
                drained.push(q.entries.pop_front().expect("checked front"));
            }
            drained
        };
        if drained.is_empty() {
            break;
        }
        for slot in drained {
            sink.0 += slot.result_count;
            if shared.collect_results {
                sink.1.extend(slot.results);
            }
        }
    }
}

// ------------------------------------------------------------------- merge

fn close_gate_and_wait(shared: &Shared<'_>) {
    {
        let _q = shared.queue.lock();
        shared.gate.store(true, Ordering::Release);
    }
    while shared.in_flight.load(Ordering::Acquire) > 0 {
        std::thread::yield_now();
    }
}

fn open_gate(shared: &Shared<'_>) {
    shared.gate.store(false, Ordering::Release);
}

/// The oldest sequence number (per merged side) that any queued or future task
/// may still probe; merging with this horizon guarantees that no in-flight
/// task loses index entries it relies on.
fn merge_horizon(shared: &Shared<'_>, side: usize) -> Seq {
    let mut horizon = shared.windows[side].earliest_live();
    let q = shared.queue.lock();
    for slot in q.entries.iter() {
        if slot.state != SlotState::Completed
            && shared.probe_idx(slot.tuple.side) == side
        {
            horizon = horizon.min(slot.bounds.earliest);
        }
    }
    horizon
}

fn maybe_merge(shared: &Shared<'_>, local: &mut JoinRunStats) {
    for side in 0..if shared.self_join { 1 } else { 2 } {
        if !shared.indexes[side].needs_merge() {
            continue;
        }
        if shared.merge_claimed.swap(true, Ordering::AcqRel) {
            return; // another thread is already merging
        }
        if !shared.indexes[side].needs_merge() {
            shared.merge_claimed.store(false, Ordering::Release);
            return;
        }
        let SharedIndex::Pim(pim) = &shared.indexes[side] else {
            shared.merge_claimed.store(false, Ordering::Release);
            return;
        };
        let merge_start = Instant::now();
        let report = match shared.merge_policy {
            MergePolicy::Blocking => {
                close_gate_and_wait(shared);
                let horizon = merge_horizon(shared, side);
                let report = pim.merge(horizon);
                open_gate(shared);
                report
            }
            MergePolicy::NonBlocking => {
                // Phase 1: stop index updates for this side, then build the
                // next generation while the other workers keep joining.
                close_gate_and_wait(shared);
                shared.no_index_updates[side].store(true, Ordering::Release);
                let horizon = merge_horizon(shared, side);
                open_gate(shared);
                let prepared = pim.begin_merge(horizon);
                // Phase 2: swap the tree under a closed gate, then re-open it
                // *before* replaying the updates buffered during phase 1 — the
                // paper's workers resume joining (with index updates) while the
                // merging thread drains the pending list. Pending tuples stay
                // reachable through the linear window scan until they are
                // marked indexed, so probes remain correct throughout.
                close_gate_and_wait(shared);
                let report = pim.install_merge(prepared);
                let pending = std::mem::take(&mut *shared.pending[side].lock());
                shared.no_index_updates[side].store(false, Ordering::Release);
                open_gate(shared);
                for chunk in pending.chunks(4096) {
                    pim.insert_batch(chunk);
                    for &(_, seq) in chunk {
                        shared.windows[side].mark_indexed(seq);
                    }
                    shared.windows[side].try_advance_edge();
                }
                report
            }
        };
        local.breakdown.record_nanos(
            pimtree_common::Step::Merge,
            report.duration.as_nanos() as u64,
        );
        {
            let mut ms = shared.merge_stats.lock();
            ms.0 += 1;
            ms.1 += merge_start.elapsed();
        }
        shared.merge_claimed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{canonical, reference_join};
    use pimtree_common::{IndexKind, PimConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64, 0u64];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() { StreamSide::R } else { StreamSide::S };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, rng.gen_range(0..domain))
            })
            .collect()
    }

    fn self_join_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64).map(|i| Tuple::r(i, rng.gen_range(0..domain))).collect()
    }

    fn config(w: usize, threads: usize, task: usize, merge_ratio: f64, policy: MergePolicy) -> JoinConfig {
        let mut pim = PimConfig::for_window(w)
            .with_merge_ratio(merge_ratio)
            .with_insertion_depth(2)
            .with_merge_policy(policy);
        pim.css_fanout = 8;
        pim.css_leaf_size = 8;
        pim.btree_fanout = 8;
        JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(task)
            .with_pim(pim)
    }

    #[test]
    fn single_thread_matches_reference() {
        let tuples = random_tuples(3000, 400, 31);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        let op = ParallelIbwj::new(
            config(128, 1, 4, 0.5, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert_eq!(stats.results as usize, expected.len());
        assert!(stats.merges > 0, "merge ratio 0.5 over 3000 tuples must merge");
    }

    #[test]
    fn multi_thread_matches_reference_nonblocking() {
        let tuples = random_tuples(6000, 600, 32);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 256, 256, false));
        assert!(!expected.is_empty());
        for threads in [2, 4, 8] {
            let op = ParallelIbwj::new(
                config(256, threads, 4, 0.5, MergePolicy::NonBlocking),
                predicate,
                SharedIndexKind::PimTree,
                false,
            )
            .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn multi_thread_matches_reference_blocking_merge() {
        let tuples = random_tuples(5000, 500, 33);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 200, 200, false));
        let op = ParallelIbwj::new(
            config(200, 4, 3, 0.25, MergePolicy::Blocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (stats, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
        assert!(stats.merges > 0);
    }

    #[test]
    fn bwtree_backend_matches_reference() {
        let tuples = random_tuples(4000, 500, 34);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        for threads in [1, 4] {
            let op = ParallelIbwj::new(
                config(128, threads, 4, 1.0, MergePolicy::NonBlocking),
                predicate,
                SharedIndexKind::BwTree,
                false,
            )
            .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn self_join_matches_reference() {
        let tuples = self_join_tuples(4000, 300, 35);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
        assert!(!expected.is_empty());
        for threads in [1, 4] {
            let op = ParallelIbwj::new(
                config(128, threads, 4, 0.5, MergePolicy::NonBlocking),
                predicate,
                SharedIndexKind::PimTree,
                true,
            )
            .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn warmup_run_produces_identical_results_and_reduced_counters() {
        let tuples = random_tuples(4000, 400, 39);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 4, 4, 0.5, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (full_stats, full_results) = op.run(&tuples);
        let (warm_stats, warm_results) = op.run_with_warmup(&tuples, 1000);
        // The result stream is the same whether or not a warmup prefix is
        // excluded from the statistics.
        assert_eq!(canonical(&warm_results), canonical(&full_results));
        // Only the post-warmup tuples are counted.
        assert_eq!(warm_stats.tuples, full_stats.tuples - 1000);
        assert!(warm_stats.results <= full_stats.results);
        // Warmup longer than the input degenerates to an empty measurement.
        let (empty_stats, all_results) = op.run_with_warmup(&tuples, tuples.len() + 10);
        assert_eq!(empty_stats.tuples, 0);
        assert_eq!(canonical(&all_results), canonical(&full_results));
    }

    #[test]
    fn results_are_propagated_in_arrival_order() {
        let tuples = random_tuples(3000, 200, 36);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 6, 2, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert!(!results.is_empty());
        // The probing tuple's position in the input must be non-decreasing
        // across the propagated result stream.
        let mut pos_of = std::collections::HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            pos_of.insert((t.side, t.seq), i);
        }
        let positions: Vec<usize> = results.iter().map(|r| pos_of[&(r.probe.side, r.probe.seq)]).collect();
        assert!(
            positions.windows(2).all(|w| w[0] <= w[1]),
            "result propagation must preserve arrival order"
        );
    }

    #[test]
    fn asymmetric_windows_match_reference() {
        let tuples = random_tuples(4000, 300, 37);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 64, 512, false));
        let mut cfg = config(512, 4, 4, 1.0, MergePolicy::NonBlocking);
        cfg.window_r = 64;
        cfg.window_s = 512;
        let op = ParallelIbwj::new(cfg, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
    }

    #[test]
    fn empty_input_and_tiny_input() {
        let predicate = BandPredicate::new(1);
        let op = ParallelIbwj::new(
            config(64, 4, 8, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        )
        .with_collected_results(true);
        let (stats, results) = op.run(&[]);
        assert_eq!(stats.results, 0);
        assert!(results.is_empty());
        let (stats, _) = op.run(&[Tuple::r(0, 5)]);
        assert_eq!(stats.tuples, 1);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn latency_and_traffic_are_recorded() {
        let tuples = random_tuples(2000, 400, 38);
        let predicate = BandPredicate::new(2);
        let op = ParallelIbwj::new(
            config(128, 4, 4, 1.0, MergePolicy::NonBlocking),
            predicate,
            SharedIndexKind::PimTree,
            false,
        );
        let (stats, _) = op.run(&tuples);
        assert_eq!(stats.latency.len() as u64, stats.tuples);
        assert!(stats.latency.mean_micros() > 0.0);
        assert!(stats.bytes_loaded > 0);
        assert!(stats.bytes_stored > 0);
    }
}
