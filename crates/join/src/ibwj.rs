//! Single-threaded index-based window join (IBWJ).
//!
//! Processing a tuple `r` arriving on stream `R` follows the three steps of
//! §2.1: (1) probe the index of the opposite window for matches, (2) remove
//! the tuple that expires from `R`'s window (how — eagerly, lazily or in bulk
//! — is the index adapter's business), and (3) insert `r` into `R`'s window
//! and index. The operator is generic over the index through
//! [`WindowIndexAdapter`], which is how the paper's single-threaded comparison
//! (Figures 8b, 9, 10a/10b) is produced from one code path.

use std::time::Instant;

use pimtree_common::{
    BandPredicate, IndexKind, JoinConfig, JoinResult, ProbeConfig, ProbeCounters, Step, StepTimer,
    StreamSide, Tuple,
};
use pimtree_window::SlidingWindow;

use crate::adapter::{
    BTreeAdapter, BwTreeAdapter, ChainedAdapter, ImTreeAdapter, PimTreeAdapter, WindowIndexAdapter,
};
use crate::stats::JoinRunStats;
use pimtree_chained::ChainVariant;

/// A single-threaded stream-join operator processing one tuple at a time.
pub trait SingleThreadJoin {
    /// Operator name for benchmark output.
    fn name(&self) -> String;

    /// Processes one arriving tuple, appending its results (ordered by the
    /// matched tuple's arrival) to `out`.
    fn process(&mut self, tuple: Tuple, out: &mut Vec<JoinResult>);

    /// Statistics accumulated so far (merge counts, per-step costs). The
    /// default implementation reports nothing.
    fn stats(&self) -> JoinRunStats {
        JoinRunStats::default()
    }

    /// Runs the operator over a tuple sequence, returning run statistics and —
    /// when `collect` is true — the produced results.
    fn run(&mut self, tuples: &[Tuple], collect: bool) -> (JoinRunStats, Vec<JoinResult>) {
        let mut out = Vec::new();
        let mut kept = Vec::new();
        let start = Instant::now();
        for &t in tuples {
            self.process(t, &mut out);
            if collect {
                kept.append(&mut out);
            } else {
                out.clear();
            }
        }
        let elapsed = start.elapsed();
        let mut stats = self.stats();
        stats.tuples = tuples.len() as u64;
        stats.results = if collect {
            kept.len() as u64
        } else {
            stats.results
        };
        stats.elapsed = elapsed;
        (stats, kept)
    }
}

/// The single-threaded IBWJ operator, generic over the window index.
#[derive(Debug)]
pub struct IbwjOperator<A: WindowIndexAdapter> {
    windows: [SlidingWindow; 2],
    window_sizes: [usize; 2],
    indexes: [A; 2],
    predicate: BandPredicate,
    self_join: bool,
    instrument: bool,
    probe: ProbeConfig,
    probe_counters: ProbeCounters,
    results_count: u64,
    merges: u64,
    merge_time: std::time::Duration,
    breakdown: pimtree_common::CostBreakdown,
}

impl<A: WindowIndexAdapter> IbwjOperator<A> {
    /// Creates a two-way IBWJ with one index per window, built by `make_index`.
    pub fn new(
        window_r: usize,
        window_s: usize,
        predicate: BandPredicate,
        mut make_index: impl FnMut() -> A,
    ) -> Self {
        IbwjOperator {
            windows: [
                SlidingWindow::with_default_slack(window_r),
                SlidingWindow::with_default_slack(window_s),
            ],
            window_sizes: [window_r, window_s],
            indexes: [make_index(), make_index()],
            predicate,
            self_join: false,
            instrument: false,
            probe: ProbeConfig::default(),
            probe_counters: ProbeCounters::default(),
            results_count: 0,
            merges: 0,
            merge_time: std::time::Duration::ZERO,
            breakdown: pimtree_common::CostBreakdown::new(),
        }
    }

    /// Creates a self-join IBWJ: a single window and index probed and updated
    /// by every tuple.
    pub fn new_self_join(
        window: usize,
        predicate: BandPredicate,
        mut make_index: impl FnMut() -> A,
    ) -> Self {
        IbwjOperator {
            windows: [
                SlidingWindow::with_default_slack(window),
                SlidingWindow::with_default_slack(1),
            ],
            window_sizes: [window, 1],
            indexes: [make_index(), make_index()],
            predicate,
            self_join: true,
            instrument: false,
            probe: ProbeConfig::default(),
            probe_counters: ProbeCounters::default(),
            results_count: 0,
            merges: 0,
            merge_time: std::time::Duration::ZERO,
            breakdown: pimtree_common::CostBreakdown::new(),
        }
    }

    /// Enables per-step cost instrumentation (Figure 9b). Instrumentation adds
    /// two clock reads per step and is off by default. The instrumented probe
    /// always takes the scalar path (its purpose is the per-step cost split).
    pub fn with_instrumentation(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Overrides the probe tuning. With batching enabled (the default) each
    /// tuple's probe goes through the index's batched API as a group of one —
    /// which degenerates to the scalar descent (no sort/dedup/prefetch
    /// overhead) but keeps the probe counters and exercises the exact entry
    /// point the parallel engine batches across a whole task; disabling it
    /// restores the plain scalar probe call unchanged.
    pub fn with_probe_config(mut self, probe: ProbeConfig) -> Self {
        probe.validate().expect("invalid probe configuration");
        self.probe = probe;
        self
    }

    /// Access to the index of stream `R`'s window (for stats).
    pub fn index_r(&self) -> &A {
        &self.indexes[0]
    }

    /// Access to the index of stream `S`'s window (for stats).
    pub fn index_s(&self) -> &A {
        &self.indexes[1]
    }
}

impl<A: WindowIndexAdapter> SingleThreadJoin for IbwjOperator<A> {
    fn name(&self) -> String {
        format!("ibwj/{}", self.indexes[0].name())
    }

    fn stats(&self) -> JoinRunStats {
        JoinRunStats {
            results: self.results_count,
            merges: self.merges,
            merge_time: self.merge_time,
            breakdown: self.breakdown.clone(),
            probe: self.probe_counters,
            ..Default::default()
        }
    }

    fn process(&mut self, tuple: Tuple, out: &mut Vec<JoinResult>) {
        let (probe_idx, own_idx, matched_side) = if self.self_join {
            (0, 0, StreamSide::R)
        } else {
            (
                tuple.side.opposite().index(),
                tuple.side.index(),
                tuple.side.opposite(),
            )
        };
        let range = self.predicate.probe_range(tuple.key);
        let probe_bounds = self.windows[probe_idx].bounds();

        // Step 1: probe the opposite index and filter to the live window.
        let before = out.len();
        if self.instrument {
            let matches = self.indexes[probe_idx].probe_instrumented(
                range,
                probe_bounds.earliest,
                &mut self.breakdown,
            );
            for e in matches {
                if probe_bounds.contains(e.seq) {
                    out.push(JoinResult::new(
                        tuple,
                        Tuple::new(matched_side, e.seq, e.key),
                    ));
                }
            }
        } else if self.probe.batch {
            // A group of one through the batched entry point: the PIM-Tree
            // answers it with its scalar fast path, so this differs from the
            // scalar branch only in the counters — but it keeps the
            // single-threaded engine on the same API the parallel engine
            // batches across a whole task.
            let indexes = &self.indexes;
            indexes[probe_idx].probe_batch(
                std::slice::from_ref(&range),
                &self.probe,
                &mut self.probe_counters,
                &mut |_, e| {
                    if probe_bounds.contains(e.seq) {
                        out.push(JoinResult::new(
                            tuple,
                            Tuple::new(matched_side, e.seq, e.key),
                        ));
                    }
                },
            );
        } else {
            // A group of one through the scalar-batch entry point: it
            // degenerates to the plain scalar probe (no partition-lock
            // grouping for a single range, no counters touched), but keeps
            // the single-threaded engine on the same API the parallel
            // engine's scalar path batches across a whole task.
            let indexes = &self.indexes;
            indexes[probe_idx].probe_ranges_scalar(
                std::slice::from_ref(&range),
                &self.probe,
                &mut self.probe_counters,
                &mut |_, e| {
                    if probe_bounds.contains(e.seq) {
                        out.push(JoinResult::new(
                            tuple,
                            Tuple::new(matched_side, e.seq, e.key),
                        ));
                    }
                },
            );
        }
        self.results_count += (out.len() - before) as u64;

        // Step 2: handle the tuple expiring from the own window.
        let own_window_size = self.window_sizes[own_idx];
        let next_seq = self.windows[own_idx].head();
        if next_seq >= own_window_size as u64 {
            let expired_seq = next_seq - own_window_size as u64;
            let expired_key = self.windows[own_idx].key_of(expired_seq);
            if self.instrument {
                let timer = StepTimer::start(Step::Delete);
                self.indexes[own_idx].on_expire(expired_key, expired_seq);
                timer.finish(&mut self.breakdown);
            } else {
                self.indexes[own_idx].on_expire(expired_key, expired_seq);
            }
        }

        // Step 3: insert the new tuple into its window and index.
        let seq = self.windows[own_idx]
            .append(tuple.key)
            .expect("sliding window slack exhausted");
        debug_assert_eq!(
            seq, tuple.seq,
            "input sequence numbers must match arrival order"
        );
        if self.instrument {
            let timer = StepTimer::start(Step::Insert);
            self.indexes[own_idx].insert(tuple.key, seq);
            timer.finish(&mut self.breakdown);
        } else {
            self.indexes[own_idx].insert(tuple.key, seq);
        }

        // Maintenance (merge) if the index asks for it.
        let earliest_live = self.windows[own_idx].earliest_live();
        if let Some(report) = self.indexes[own_idx].maintain(earliest_live) {
            self.merges += 1;
            self.merge_time += report.duration;
            self.breakdown
                .record_nanos(Step::Merge, report.duration.as_nanos() as u64);
        }
        self.breakdown.tuples += 1;
    }
}

/// Builds a boxed single-threaded join operator for the given configuration.
/// This is the factory the benchmark harness uses to sweep index kinds.
pub fn build_single_threaded(
    config: &JoinConfig,
    predicate: BandPredicate,
    self_join: bool,
) -> Box<dyn SingleThreadJoin> {
    let (wr, ws) = (config.window_r, config.window_s);
    let pim = config.pim;
    let probe = config.probe;
    match config.index {
        IndexKind::None => {
            if self_join {
                Box::new(crate::nlwj::NlwjOperator::new_self_join(wr, predicate))
            } else {
                Box::new(crate::nlwj::NlwjOperator::new(wr, ws, predicate))
            }
        }
        IndexKind::BTree => boxed(wr, ws, predicate, self_join, probe, move || {
            BTreeAdapter::with_fanout(pim.btree_fanout)
        }),
        IndexKind::BChain => {
            let chain = config.chain_length;
            boxed(wr, ws, predicate, self_join, probe, move || {
                ChainedAdapter::new(ChainVariant::BChain, wr, chain)
            })
        }
        IndexKind::IbChain => {
            let chain = config.chain_length;
            boxed(wr, ws, predicate, self_join, probe, move || {
                ChainedAdapter::new(ChainVariant::IbChain, wr, chain)
            })
        }
        IndexKind::ImTree => boxed(wr, ws, predicate, self_join, probe, move || {
            ImTreeAdapter::new(pim)
        }),
        IndexKind::PimTree => boxed(wr, ws, predicate, self_join, probe, move || {
            PimTreeAdapter::new(pim)
        }),
        IndexKind::BwTree => boxed(wr, ws, predicate, self_join, probe, BwTreeAdapter::new),
    }
}

fn boxed<A: WindowIndexAdapter + 'static>(
    wr: usize,
    ws: usize,
    predicate: BandPredicate,
    self_join: bool,
    probe: ProbeConfig,
    make_index: impl FnMut() -> A,
) -> Box<dyn SingleThreadJoin> {
    if self_join {
        Box::new(IbwjOperator::new_self_join(wr, predicate, make_index).with_probe_config(probe))
    } else {
        Box::new(IbwjOperator::new(wr, ws, predicate, make_index).with_probe_config(probe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{canonical, reference_join};
    use pimtree_common::PimConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64, 0u64];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, rng.gen_range(0..domain))
            })
            .collect()
    }

    fn config_with(index: IndexKind, w: usize) -> JoinConfig {
        let mut pim = PimConfig::for_window(w)
            .with_merge_ratio(0.25)
            .with_insertion_depth(2);
        pim.css_fanout = 8;
        pim.css_leaf_size = 8;
        pim.btree_fanout = 8;
        JoinConfig::symmetric(w, index)
            .with_chain_length(3)
            .with_pim(pim)
    }

    #[test]
    fn every_index_kind_matches_the_reference_two_way() {
        let tuples = random_tuples(3000, 400, 10);
        let predicate = BandPredicate::new(2);
        let w = 128;
        let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
        assert!(!expected.is_empty());
        for kind in [
            IndexKind::None,
            IndexKind::BTree,
            IndexKind::BChain,
            IndexKind::IbChain,
            IndexKind::ImTree,
            IndexKind::PimTree,
            IndexKind::BwTree,
        ] {
            let mut op = build_single_threaded(&config_with(kind, w), predicate, false);
            let (_, results) = op.run(&tuples, true);
            assert_eq!(canonical(&results), expected, "index kind {kind}");
        }
    }

    #[test]
    fn every_index_kind_matches_the_reference_self_join() {
        let tuples: Vec<Tuple> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..2000u64)
                .map(|i| Tuple::r(i, rng.gen_range(0..300)))
                .collect()
        };
        let predicate = BandPredicate::new(1);
        let w = 96;
        let expected = canonical(&reference_join(&tuples, predicate, w, w, true));
        assert!(!expected.is_empty());
        for kind in [
            IndexKind::BTree,
            IndexKind::ImTree,
            IndexKind::PimTree,
            IndexKind::BwTree,
        ] {
            let mut op = build_single_threaded(&config_with(kind, w), predicate, true);
            let (_, results) = op.run(&tuples, true);
            assert_eq!(canonical(&results), expected, "index kind {kind}");
        }
    }

    #[test]
    fn asymmetric_window_sizes_are_respected() {
        let tuples = random_tuples(4000, 200, 12);
        let predicate = BandPredicate::new(1);
        let (wr, ws) = (32, 256);
        let expected = canonical(&reference_join(&tuples, predicate, wr, ws, false));
        let mut config = config_with(IndexKind::PimTree, ws);
        config.window_r = wr;
        config.window_s = ws;
        let mut op = build_single_threaded(&config, predicate, false);
        let (_, results) = op.run(&tuples, true);
        assert_eq!(canonical(&results), expected);
    }

    #[test]
    fn batched_and_scalar_probe_paths_agree_for_every_index_kind() {
        let tuples = random_tuples(2500, 60, 15); // small domain: many dup keys
        let predicate = BandPredicate::new(2);
        let w = 96;
        let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
        assert!(!expected.is_empty());
        for kind in [
            IndexKind::BTree,
            IndexKind::ImTree,
            IndexKind::PimTree,
            IndexKind::BwTree,
        ] {
            let mut config = config_with(kind, w);
            config.probe = pimtree_common::ProbeConfig::default();
            let mut batched = build_single_threaded(&config, predicate, false);
            config.probe = pimtree_common::ProbeConfig::scalar();
            let mut scalar = build_single_threaded(&config, predicate, false);
            let (batched_stats, batched_results) = batched.run(&tuples, true);
            let (scalar_stats, scalar_results) = scalar.run(&tuples, true);
            assert_eq!(canonical(&batched_results), expected, "batched {kind}");
            assert_eq!(canonical(&scalar_results), expected, "scalar {kind}");
            assert_eq!(
                scalar_stats.probe,
                Default::default(),
                "scalar path must not touch probe counters ({kind})"
            );
            match kind {
                IndexKind::PimTree => {
                    assert_eq!(batched_stats.probe.batches, tuples.len() as u64);
                    assert_eq!(batched_stats.probe.scalar_probes, 0);
                }
                _ => assert_eq!(
                    batched_stats.probe.scalar_probes,
                    tuples.len() as u64,
                    "{kind} has no batched path and falls back per probe"
                ),
            }
        }
    }

    #[test]
    fn operator_reports_merges_and_breakdown() {
        let tuples = random_tuples(4000, 10_000, 13);
        let predicate = BandPredicate::new(5);
        let pim = PimConfig::for_window(256)
            .with_merge_ratio(0.25)
            .with_insertion_depth(2);
        let mut op = IbwjOperator::new(256, 256, predicate, || PimTreeAdapter::new(pim))
            .with_instrumentation();
        let (stats, _) = op.run(&tuples, false);
        assert!(
            stats.merges > 0,
            "merge ratio 0.25 over 4000 tuples must merge"
        );
        assert!(stats.merge_time.as_nanos() > 0);
        assert!(stats.breakdown.count(Step::Insert) > 0);
        assert!(stats.breakdown.count(Step::Search) > 0);
        assert!(stats.breakdown.count(Step::Merge) == stats.merges);
    }

    #[test]
    fn results_count_matches_collected_results() {
        let tuples = random_tuples(1500, 150, 14);
        let predicate = BandPredicate::new(2);
        let mut op = IbwjOperator::new(64, 64, predicate, BTreeAdapter::new);
        let (stats, results) = op.run(&tuples, true);
        assert_eq!(stats.results, results.len() as u64);
        assert!(stats.observed_match_rate() > 0.0);
    }
}
