//! Diagnostic harness for the parallel engine (used while developing; kept as
//! an extra cross-checking integration test).

use pimtree_common::{
    BandPredicate, IndexKind, JoinConfig, MergePolicy, PimConfig, StreamSide, Tuple,
};
use pimtree_join::parallel::{ParallelIbwj, SharedIndexKind};
use pimtree_join::reference::{canonical, reference_join};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = [0u64, 0u64];
    (0..n)
        .map(|_| {
            let side = if rng.gen::<bool>() {
                StreamSide::R
            } else {
                StreamSide::S
            };
            let seq = seqs[side.index()];
            seqs[side.index()] += 1;
            Tuple::new(side, seq, rng.gen_range(0..domain))
        })
        .collect()
}

fn config(w: usize, threads: usize, task: usize, merge_ratio: f64) -> JoinConfig {
    let mut pim = PimConfig::for_window(w)
        .with_merge_ratio(merge_ratio)
        .with_insertion_depth(2)
        .with_merge_policy(MergePolicy::NonBlocking);
    pim.css_fanout = 8;
    pim.css_leaf_size = 8;
    pim.btree_fanout = 8;
    JoinConfig::symmetric(w, IndexKind::PimTree)
        .with_threads(threads)
        .with_task_size(task)
        .with_pim(pim)
}

fn diff_report(ours: &[(u8, u64, u8, u64)], expected: &[(u8, u64, u8, u64)]) -> String {
    use std::collections::HashSet;
    let a: HashSet<_> = ours.iter().collect();
    let b: HashSet<_> = expected.iter().collect();
    let missing: Vec<_> = expected
        .iter()
        .filter(|x| !a.contains(x))
        .take(10)
        .collect();
    let extra: Vec<_> = ours.iter().filter(|x| !b.contains(x)).take(10).collect();
    format!(
        "ours={} expected={} missing(sample)={:?} extra(sample)={:?}",
        ours.len(),
        expected.len(),
        missing,
        extra
    )
}

#[test]
fn bwtree_backend_round_trips_under_contention() {
    let tuples = random_tuples(4000, 500, 34);
    let predicate = BandPredicate::new(2);
    let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
    let op = ParallelIbwj::new(
        config(128, 4, 4, 1.0),
        predicate,
        SharedIndexKind::BwTree,
        false,
    )
    .with_collected_results(true);
    let (_, results) = op.run(&tuples);
    let ours = canonical(&results);
    assert_eq!(ours, expected, "{}", diff_report(&ours, &expected));
}

#[test]
fn pim_self_join_round_trips_under_contention() {
    let mut rng = StdRng::seed_from_u64(35);
    let tuples: Vec<Tuple> = (0..4000u64)
        .map(|i| Tuple::r(i, rng.gen_range(0..300)))
        .collect();
    let predicate = BandPredicate::new(1);
    let expected = canonical(&reference_join(&tuples, predicate, 128, 128, true));
    let op = ParallelIbwj::new(
        config(128, 4, 4, 0.5),
        predicate,
        SharedIndexKind::PimTree,
        true,
    )
    .with_collected_results(true);
    let (_, results) = op.run(&tuples);
    let ours = canonical(&results);
    assert_eq!(ours, expected, "{}", diff_report(&ours, &expected));
}
