//! Local stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io dependencies, so this shim
//! re-implements the subset of the proptest API the workspace's tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`), the
//! [`Strategy`] trait over integer ranges / `any::<T>()` / tuples /
//! `collection::vec` / `sample::select` / `bool::ANY`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! each case is generated from a deterministic per-case seed, so failures
//! reproduce across runs, and the failing case's seed index appears in the
//! panic location's loop iteration. That is sufficient for the model-checking
//! style tests in this workspace.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only the case count is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving a test case.
pub type TestRng = StdRng;

/// Builds the RNG for case number `case` (deterministic across runs).
pub fn test_rng(case: u32) -> TestRng {
    StdRng::seed_from_u64(0x5EED_CAFE_0000_0000 ^ u64::from(case).wrapping_mul(0x9E37_79B9))
}

/// A value generator: the proptest strategy trait without shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: rand::Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy producing any value of `A` (uniform over the type's domain).
pub struct Any<A>(PhantomData<A>);

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct BoolStrategy;

    /// Uniformly random booleans (`prop::bool::ANY`).
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen()
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            !size.is_empty(),
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skips the remainder of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The proptest entry macro: expands each contained function into a `#[test]`
/// that runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_rng(case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                let case_fn = move || $body;
                case_fn();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<(i64, bool)>> {
        prop::collection::vec((0i64..100, prop::bool::ANY), 1..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_of_tuples_has_requested_shape(v in pair()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (k, _) in v {
                prop_assert!((0..100).contains(&k));
            }
        }

        #[test]
        fn any_and_select_compose(a in any::<u16>(), m in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert_ne!(m, 0);
            prop_assume!(a > 0);
            prop_assert_eq!(u64::from(a) * m / m, u64::from(a));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<i64> = (0..5)
            .map(|c| Strategy::generate(&(0i64..1000), &mut crate::test_rng(c)))
            .collect();
        let b: Vec<i64> = (0..5)
            .map(|c| Strategy::generate(&(0i64..1000), &mut crate::test_rng(c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases vary");
    }
}
