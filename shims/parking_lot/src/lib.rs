//! Local stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the `parking_lot` API the workspace uses, backed by the
//! standard library's locks. Semantics follow `parking_lot` where they
//! differ from `std`:
//!
//! * no lock poisoning — a panic while holding a guard does not poison the
//!   lock for later users (`into_inner` on the poison error);
//! * `lock()` / `read()` / `write()` return the guard directly;
//! * `try_lock()` returns `Option<Guard>`.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(6));
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        let r = l.read();
        assert!(l.try_write().is_none());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
