//! Local stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its config and value
//! types so that downstream users can persist them, but nothing inside the
//! workspace serializes anything. With crates.io unavailable, these derive
//! macros expand to nothing: the attribute positions stay valid and the code
//! compiles unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
