//! Local stand-in for the `criterion` crate.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`) with a deliberately simple measurement loop:
//! one warm-up iteration followed by `sample_size` timed iterations, printing
//! the mean per-iteration time (and throughput when configured). It has none
//! of criterion's statistics, but it keeps the bench targets compiling and
//! runnable without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / self.sample_size as f64;
        let label = format!("{}/{}", self.name, id.name);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let eps = if mean > 0.0 { n as f64 / mean } else { 0.0 };
                println!("bench {label}: {:.3} ms/iter, {eps:.0} elem/s", mean * 1e3);
            }
            Some(Throughput::Bytes(n)) => {
                let bps = if mean > 0.0 { n as f64 / mean } else { 0.0 };
                println!(
                    "bench {label}: {:.3} ms/iter, {:.1} MB/s",
                    mean * 1e3,
                    bps / 1e6
                );
            }
            None => println!("bench {label}: {:.3} ms/iter", mean * 1e3),
        }
    }

    pub fn finish(&mut self) {}
}

/// Runs the measured closure.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, not measured
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `setup` outside the measured region and `routine` inside it.
    pub fn iter_with_setup<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        black_box(routine(setup())); // warm-up, not measured
        self.elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", "x"), &21u64, |b, &i| b.iter(|| i * 2));
    }
}
