//! Local stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements the
//! subset of the `rand 0.8` API the workspace uses: the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, fast, and deterministic per seed, which is all
//! the workloads and tests rely on (they never depend on the exact stream of
//! the upstream `rand` crate, only on per-seed determinism).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an `Rng`'s raw 64-bit output
/// (the shim's analogue of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform in `[0, 1)` with 24 bits of precision.
impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Standard, B: Standard> Standard for (A, B) {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (A::sample_standard(rng), B::sample_standard(rng))
    }
}

/// Ranges that [`Rng::gen_range`] accepts (half-open and inclusive integer
/// ranges, half-open float ranges).
pub trait SampleRange<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// The random-number-generator interface (raw source plus the extension
/// methods rand's `Rng` trait provides).
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only `seed_from_u64` is used by the workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(0usize..=7);
            assert!(w <= 7);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..4 appear");
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_unsized_generic_bound() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> i64 {
            rng.gen_range(0i64..100)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample(&mut rng);
    }
}
