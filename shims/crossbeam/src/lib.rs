//! Local stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces the workspace uses — `utils::CachePadded` and the
//! `channel` module (bounded/unbounded MPMC channels) — implemented over
//! standard-library primitives, because the build environment cannot fetch
//! crates.io dependencies.

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line so that adjacent
    /// atomics do not false-share. 128 bytes covers the common 64-byte line
    /// as well as the 128-byte aligned prefetch pairs of recent x86 parts.
    #[derive(Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T>(T);

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded(value)
        }

        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct Inner<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while `cap` items are
    /// queued. `cap` of zero degenerates to a capacity of one rather than a
    /// rendezvous channel (the workspace never uses zero).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    pub struct Sender<T>(Arc<Inner<T>>);

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.0.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.not_empty.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            let item = self.0.queue.lock().unwrap().items.pop_front();
            if item.is_some() {
                self.0.not_full.notify_one();
            }
            item
        }

        /// A blocking iterator that ends when the channel is empty and every
        /// sender has been dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn multiple_producers_multiple_consumers() {
        let (tx, rx) = channel::bounded::<u64>(4);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
