//! Local stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros from the
//! sibling `serde_derive` shim so that `use serde::{Serialize, Deserialize}`
//! and the derive attributes compile unchanged. No serialization framework is
//! provided — nothing in the workspace serializes (JSON output is hand
//! formatted by the bench binaries).

pub use serde_derive::{Deserialize, Serialize};
