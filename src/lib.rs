//! # pimtree — Parallel Index-based Stream Join on a Multicore CPU
//!
//! A from-scratch Rust reproduction of *"Parallel Index-based Stream Join on a
//! Multicore CPU"* (Shahvarani & Jacobsen): the **PIM-Tree** two-stage
//! partitioned sliding-window index and the **parallel index-based window
//! join** built on top of it, together with every baseline the paper
//! evaluates against (B+-Tree, chained index, round-robin / handshake
//! partitioning, a Bw-Tree-style concurrent index) and a benchmark harness
//! that regenerates each figure of the evaluation.
//!
//! This facade crate re-exports the workspace's public API under one roof so
//! applications can depend on a single crate:
//!
//! ```
//! use pimtree::prelude::*;
//!
//! // A tiny band join between two streams, driven single-threaded.
//! let config = JoinConfig::symmetric(1 << 10, IndexKind::PimTree);
//! let mut op = build_single_threaded(&config, BandPredicate::new(2), false);
//! let mut out = Vec::new();
//! op.process(Tuple::r(0, 100), &mut out);
//! op.process(Tuple::s(0, 101), &mut out);
//! assert_eq!(out.len(), 1, "|100 - 101| <= 2 matches");
//! ```
//!
//! The individual subsystems remain available as their own crates
//! (`pimtree-core`, `pimtree-join`, …); see `README.md` for the crate map
//! and `docs/ARCHITECTURE.md` for how a tuple flows through the system.

pub use pimtree_btree as btree;
pub use pimtree_bwtree as bwtree;
pub use pimtree_chained as chained;
pub use pimtree_common as common;
pub use pimtree_core as core;
pub use pimtree_css as css;
pub use pimtree_join as join;
pub use pimtree_model as model;
pub use pimtree_multidim as multidim;
pub use pimtree_numa as numa;
pub use pimtree_telemetry as telemetry;
pub use pimtree_window as window;
pub use pimtree_workload as workload;

/// The most commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use pimtree_btree::{BTreeIndex, Entry};
    pub use pimtree_common::{
        BandPredicate, IndexKind, JoinConfig, JoinResult, Key, KeyRange, MergePolicy, PimConfig,
        ProbeConfig, ProbeCounters, RingConfig, Seq, ShardConfig, StreamSide, Tuple,
    };
    pub use pimtree_core::{ImTree, PimTree};
    pub use pimtree_css::CssTree;
    pub use pimtree_join::{
        build_single_threaded, HandshakeJoin, HandshakeMode, IbwjOperator, JoinRunStats,
        NlwjOperator, ParallelIbwj, SharedIndexKind, SingleThreadJoin, TimeBasedIbwj,
        TimedStreamTuple,
    };
    pub use pimtree_multidim::{MdBandPredicate, MdPimTree, MdTuple, MultiDimIbwj};
    pub use pimtree_numa::{
        DriftMonitor, NumaPartitionedJoin, NumaTopology, PlacementStrategy, RangePartitioner,
    };
    pub use pimtree_window::{SlidingWindow, TimeWindow};
    pub use pimtree_workload::{
        calibrate_diff, KeyDistribution, ShiftingGaussian, StreamGenerator, StreamMix,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let pim = PimTree::new(PimConfig::for_window(128));
        pim.insert(5, 0);
        assert_eq!(pim.len(), 1);
        let window = SlidingWindow::with_default_slack(16);
        assert_eq!(window.window_size(), 16);
        let _ = KeyDistribution::uniform();
    }
}
